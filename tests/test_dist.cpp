// hoga::dist tests: wire reliability (ack/NAK/retransmit, duplicate
// suppression, backoff exhaustion), elastic sharding (rendezvous stability),
// and the multi-process runtime's bit-exactness contract — any worker
// count, and any healed fault schedule (mid-epoch kills, heartbeat-timeout
// deaths, transport drops/corruption), must reproduce the single-process
// reference checkpoint byte for byte.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <thread>

#include "data/reasoning_dataset.hpp"
#include "dist/dist.hpp"
#include "dist/sharding.hpp"
#include "dist/wire.hpp"
#include "fault/fault.hpp"
#include "reasoning/features.hpp"
#include "store/feature_store.hpp"

namespace hoga::dist {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  std::string path;
  explicit TempDir(const std::string& name)
      : path("/tmp/hoga_test_dist_" + name) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

// ---- sharding -------------------------------------------------------------

TEST(DistSharding, ShardsAreContiguousAndNearEqual) {
  const auto shards = make_shards(103, 4, /*content_digest=*/7);
  ASSERT_EQ(shards.size(), 4u);
  std::int64_t expect_begin = 0;
  std::int64_t min_rows = 103, max_rows = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.begin, expect_begin);
    expect_begin = s.end;
    min_rows = std::min(min_rows, s.rows());
    max_rows = std::max(max_rows, s.rows());
  }
  EXPECT_EQ(expect_begin, 103);
  EXPECT_LE(max_rows - min_rows, 1);
  // More shards than rows clamps to one row per shard.
  EXPECT_EQ(make_shards(3, 8, 7).size(), 3u);
}

TEST(DistSharding, RendezvousMovesOnlyTheDeadWorkersShards) {
  const auto shards = make_shards(1000, 16, /*content_digest=*/42);
  const std::vector<int> all{0, 1, 2, 3};
  const auto before = assign_shards(shards, all);
  // Deterministic, and every rank with enough shards gets some.
  EXPECT_EQ(before, assign_shards(shards, all));
  // Kill rank 2: its shards move, everyone else's stay.
  const auto after = assign_shards(shards, {0, 1, 3});
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (before[i] != 2) {
      EXPECT_EQ(after[i], before[i]) << "shard " << i << " moved needlessly";
    } else {
      EXPECT_NE(after[i], 2);
    }
  }
}

TEST(DistSharding, TreeReduceOrderIsFixed) {
  // Slots reduce pairwise left-to-right regardless of how values are
  // distributed; the combine trace is the contract.
  std::vector<std::string> slots{"a", "b", "c", "d", "e"};
  const std::string out = tree_reduce(
      std::move(slots),
      [](std::string& x, std::string& y) { x = "(" + x + "+" + y + ")"; });
  EXPECT_EQ(out, "(((a+b)+(c+d))+e)");
}

// ---- wire -----------------------------------------------------------------

WireConfig fast_wire() {
  WireConfig w;
  w.ack_timeout_ms = 100;
  w.max_retries = 4;
  w.backoff_initial_ms = 1;
  w.backoff_max_ms = 10;
  return w;
}

TEST(DistWire, RoundTripWithEcho) {
  ChannelPair pair = make_channel_pair();
  std::thread peer([fd = pair.worker_fd] {
    Channel chan(fd, fast_wire());
    auto m = chan.recv(5000);
    ASSERT_TRUE(m.has_value());
    chan.send(Message{MsgType::kShardGrad, 1, m->a + 1, m->b, m->payload});
  });
  Channel chan(pair.coordinator_fd, fast_wire());
  chan.send(Message{MsgType::kCompute, -1, 7, 9, "payload-bytes"});
  auto reply = chan.recv(5000);
  peer.join();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, MsgType::kShardGrad);
  EXPECT_EQ(reply->a, 8);
  EXPECT_EQ(reply->b, 9);
  EXPECT_EQ(reply->payload, "payload-bytes");
  EXPECT_EQ(chan.stats().sends, 1);
  EXPECT_EQ(chan.stats().retransmits, 0);
}

TEST(DistWire, CorruptedFrameIsNakdAndRetransmitted) {
  fault::Injector inj(1);
  inj.corrupt_frame(0);  // first payload transmission arrives damaged
  fault::ScopedInjector scope(inj);
  ChannelPair pair = make_channel_pair();
  std::thread peer([fd = pair.worker_fd] {
    Channel chan(fd, fast_wire());
    auto m = chan.recv(5000);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload, "precious");
    EXPECT_EQ(chan.stats().naks_sent, 1);
  });
  Channel chan(pair.coordinator_fd, fast_wire());
  chan.send(Message{MsgType::kApply, -1, 0, 0, "precious"});
  peer.join();
  EXPECT_EQ(chan.stats().naks_received, 1);
  EXPECT_GE(chan.stats().retransmits, 1);
  EXPECT_EQ(inj.counts().corrupted_frames, 1);
}

TEST(DistWire, DroppedFrameIsRetransmitted) {
  fault::Injector inj(1);
  inj.drop_message(0);
  fault::ScopedInjector scope(inj);
  ChannelPair pair = make_channel_pair();
  std::thread peer([fd = pair.worker_fd] {
    Channel chan(fd, fast_wire());
    auto m = chan.recv(5000);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->payload, "again");
  });
  Channel chan(pair.coordinator_fd, fast_wire());
  chan.send(Message{MsgType::kApply, -1, 0, 0, "again"});
  peer.join();
  EXPECT_GE(chan.stats().retransmits, 1);
  EXPECT_EQ(inj.counts().dropped_messages, 1);
}

TEST(DistWire, BackoffExhaustionThrowsPeerDead) {
  // The peer end exists but never reads, so no ack ever comes back.
  ChannelPair pair = make_channel_pair();
  Channel chan(pair.coordinator_fd, fast_wire());
  EXPECT_THROW(chan.send(Message{MsgType::kCompute, -1, 0, 0, "void"}),
               PeerDead);
  EXPECT_EQ(chan.stats().retransmits, 3);  // max_retries - 1 extras
  ::close(pair.worker_fd);
}

// ---- runtime --------------------------------------------------------------

core::HogaConfig tiny_model() {
  core::HogaConfig mc;
  mc.in_dim = reasoning::kNodeFeatureDim;
  mc.hidden = 8;
  mc.num_hops = 3;
  mc.num_layers = 1;
  mc.out_dim = 4;
  return mc;
}

class DistRuntime : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = data::make_reasoning_graph("csa", 4, /*mapped=*/false);
  }
  DistConfig config(const std::string& ckpt_dir) const {
    DistConfig cfg;
    cfg.workers = 2;
    cfg.epochs = 3;
    cfg.num_shards = 4;
    cfg.batch_size = 16;
    cfg.lr = 5e-3f;
    cfg.seed = 11;
    cfg.checkpoint_path = ckpt_dir + "/dist_ckpt.v2";
    cfg.heartbeat_timeout_ms = 8000;  // generous: sanitizer builds are slow
    return cfg;
  }
  std::int64_t steps_per_epoch(const DistConfig& cfg) const {
    const auto shards =
        make_shards(g_.features.size(0), cfg.num_shards, /*digest=*/0);
    std::int64_t max_rows = 0;
    for (const auto& s : shards) max_rows = std::max(max_rows, s.rows());
    return (max_rows + cfg.batch_size - 1) / cfg.batch_size;
  }
  data::ReasoningGraph g_;
};

TEST_F(DistRuntime, OneWorkerMatchesReferenceBitExactly) {
  TempDir dir("one_worker");
  DistConfig cfg = config(dir.path);
  cfg.workers = 1;
  const DistResult ref =
      run_reference(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);
  const DistResult got =
      run_distributed(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);
  EXPECT_EQ(got.final_state, ref.final_state);
  EXPECT_EQ(got.epoch_losses, ref.epoch_losses);
  EXPECT_EQ(got.recoveries, 0);
}

TEST_F(DistRuntime, ThreeWorkersMatchReferenceBitExactly) {
  TempDir dir("three_workers");
  DistConfig cfg = config(dir.path);
  cfg.workers = 3;
  const DistResult ref =
      run_reference(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);
  const DistResult got =
      run_distributed(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);
  EXPECT_EQ(got.final_state, ref.final_state);
  EXPECT_EQ(got.epoch_losses, ref.epoch_losses);
  ASSERT_GE(ref.epoch_losses.size(), 2u);
  EXPECT_LT(ref.epoch_losses.back(), ref.epoch_losses.front());
}

TEST_F(DistRuntime, MidEpochKillRecoversToBitExactCheckpoint) {
  TempDir dir("kill");
  DistConfig cfg = config(dir.path);
  cfg.workers = 4;
  const std::int64_t steps = steps_per_epoch(cfg);
  ASSERT_GE(steps, 2) << "fixture too small to kill mid-epoch";

  const DistResult ref =
      run_reference(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);

  fault::Injector inj(1);
  // Rank 1 dies mid-epoch 1 (step 1 of that epoch, after the epoch-1
  // checkpoint exists): the coordinator must re-shard onto the survivors,
  // roll back, respawn the worker, and replay to the identical bits.
  inj.kill_worker_at_step(1, 1 * steps + 1);
  fault::ScopedInjector scope(inj);
  const DistResult got =
      run_distributed(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);

  EXPECT_EQ(got.final_state, ref.final_state);
  EXPECT_EQ(got.epoch_losses, ref.epoch_losses);
  EXPECT_EQ(got.recoveries, 1);
  EXPECT_EQ(got.respawns, 1);
  EXPECT_EQ(got.scaling.worker_failures, 1);
  EXPECT_GT(got.scaling.recovery_seconds, 0.0);
  EXPECT_EQ(inj.counts().worker_kills, 1);  // coordinator acknowledged it
}

TEST_F(DistRuntime, KillWithoutRespawnContinuesOnSurvivors) {
  TempDir dir("no_respawn");
  DistConfig cfg = config(dir.path);
  cfg.workers = 3;
  cfg.respawn_dead_workers = false;
  const std::int64_t steps = steps_per_epoch(cfg);

  const DistResult ref =
      run_reference(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);

  fault::Injector inj(1);
  inj.kill_worker_at_step(2, 1 * steps);
  fault::ScopedInjector scope(inj);
  const DistResult got =
      run_distributed(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);

  EXPECT_EQ(got.final_state, ref.final_state);
  EXPECT_EQ(got.recoveries, 1);
  EXPECT_EQ(got.respawns, 0);
}

TEST_F(DistRuntime, TransportFaultsAreAbsorbedWithoutDivergence) {
  TempDir dir("transport");
  DistConfig cfg = config(dir.path);
  cfg.workers = 2;
  const DistResult ref =
      run_reference(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);

  fault::Injector inj(1);
  // Each process consumes its own copy of this schedule against its own
  // payload-send counter, so drops/corruptions land in coordinator and
  // worker streams alike — all must be healed by ack/NAK/retransmit.
  inj.drop_message(2);
  inj.corrupt_frame(5);
  inj.delay_message(8, 30);
  fault::ScopedInjector scope(inj);
  const DistResult got =
      run_distributed(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);

  EXPECT_EQ(got.final_state, ref.final_state);
  EXPECT_EQ(got.recoveries, 0);  // transient faults never reach recovery
  EXPECT_GE(got.retransmits, 1);
}

TEST_F(DistRuntime, HeartbeatTimeoutDeclaresSlowWorkerDead) {
  TempDir dir("heartbeat");
  DistConfig cfg = config(dir.path);
  cfg.workers = 2;
  cfg.heartbeat_timeout_ms = 250;
  cfg.wire.ack_timeout_ms = 3000;  // the wire outlasts the liveness bound
  const DistResult ref =
      run_reference(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);

  fault::Injector inj(1);
  // A delay far beyond the liveness bound on an early worker send: the
  // coordinator declares the worker dead (no kill was scheduled — this is
  // the pure heartbeat-loss path), SIGKILLs it, and heals by replay.
  inj.delay_message(3, 1500);
  fault::ScopedInjector scope(inj);
  const DistResult got =
      run_distributed(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);

  EXPECT_EQ(got.final_state, ref.final_state);
  EXPECT_GE(got.recoveries, 1);
  EXPECT_GE(got.scaling.worker_failures, 1);
}

TEST_F(DistRuntime, DeathWithoutCheckpointIsUnrecoverable) {
  DistConfig cfg = config("/tmp");
  cfg.workers = 2;
  cfg.checkpoint_path.clear();  // no rollback target
  fault::Injector inj(1);
  inj.kill_worker_at_step(0, 0);
  fault::ScopedInjector scope(inj);
  EXPECT_THROW(run_distributed(tiny_model(), *g_.adj_hop, g_.features,
                               g_.labels, cfg),
               std::exception);
}

TEST_F(DistRuntime, StoreBackedWorkersShareOneLeasedCompute) {
  TempDir dir("store");
  DistConfig cfg = config(dir.path);
  cfg.workers = 2;
  cfg.store_directory = dir.path + "/feat";
  const DistResult ref =
      run_reference(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);
  const DistResult got =
      run_distributed(tiny_model(), *g_.adj_hop, g_.features, g_.labels, cfg);
  EXPECT_EQ(got.final_state, ref.final_state);
  // Exactly one shard was published (both workers wanted the same key; the
  // flock lease made one compute and the other block-then-read).
  int shard_files = 0;
  for (const auto& e : fs::directory_iterator(cfg.store_directory)) {
    if (e.path().extension() == ".feat") ++shard_files;
  }
  EXPECT_EQ(shard_files, 1);
}

}  // namespace
}  // namespace hoga::dist
