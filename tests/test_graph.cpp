// Graph subsystem tests: CSR construction, normalizations, SpMM (raw and
// differentiable), subgraphs, and the GraphSAINT sampler.

#include <gtest/gtest.h>

#include <set>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "graph/csr.hpp"
#include "graph/sampler.hpp"
#include "graph/spmm_op.hpp"
#include "tensor/ops.hpp"

namespace hoga::graph {
namespace {

Csr triangle() {
  // 0-1, 1-2, 2-0 undirected.
  return Csr::from_edges_undirected(3, {{0, 1}, {1, 2}, {2, 0}});
}

TEST(Csr, FromEdgesMergesDuplicates) {
  Csr c = Csr::from_edges(3, {{0, 1}, {0, 1}, {1, 2}});
  EXPECT_EQ(c.num_edges(), 2);
  EXPECT_FLOAT_EQ(c.values()[0], 2.f);  // merged weight
}

TEST(Csr, UndirectedSymmetric) {
  Csr c = triangle();
  EXPECT_EQ(c.num_edges(), 6);
  EXPECT_TRUE(c.is_symmetric());
  EXPECT_EQ(c.degree(0), 2);
}

TEST(Csr, RejectsOutOfRangeEdges) {
  EXPECT_THROW(Csr::from_edges(2, {{0, 2}}), std::runtime_error);
}

TEST(Csr, SymmetricNormalizationRowSums) {
  // For a k-regular graph with self loops, D = k+1 and every row of the
  // normalized matrix sums to 1.
  Csr norm = triangle().normalized_symmetric(1.f);
  Tensor ones = Tensor::ones({3, 1});
  Tensor out = norm.spmm(ones);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(out[i], 1.f, 1e-5f);
  EXPECT_TRUE(norm.is_symmetric());
}

TEST(Csr, SymmetricNormalizationNoSelfLoops) {
  Csr norm = triangle().normalized_symmetric(0.f);
  // No diagonal entries.
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t e = norm.row_ptr()[i]; e < norm.row_ptr()[i + 1]; ++e) {
      EXPECT_NE(norm.col_idx()[e], i);
    }
  }
}

TEST(Csr, RowNormalizationMakesRowsStochastic) {
  Csr c = Csr::from_edges(3, {{0, 1}, {0, 2}, {1, 2}});
  Csr norm = c.normalized_row();
  Tensor ones = Tensor::ones({3, 1});
  Tensor out = norm.spmm(ones);
  EXPECT_NEAR(out[0], 1.f, 1e-6f);
  EXPECT_NEAR(out[1], 1.f, 1e-6f);
  EXPECT_NEAR(out[2], 0.f, 1e-6f);  // no out-edges
}

TEST(Csr, IsolatedNodesSafeUnderNormalization) {
  Csr c = Csr::from_edges(4, {{0, 1}});
  Csr sym = c.normalized_symmetric(0.f);
  Csr row = c.normalized_row();
  EXPECT_EQ(sym.num_nodes(), 4);
  EXPECT_EQ(row.degree(3), 0);
}

TEST(Csr, SpmmMatchesDense) {
  Rng rng(1);
  Csr c = Csr::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 0}, {3, 3}});
  Tensor x = Tensor::randn({4, 3}, rng);
  Tensor y = c.spmm(x);
  // Dense reference.
  Tensor dense = Tensor::zeros({4, 4});
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t e = c.row_ptr()[i]; e < c.row_ptr()[i + 1]; ++e) {
      dense.at({i, c.col_idx()[e]}) = c.values()[e];
    }
  }
  EXPECT_TRUE(Tensor::allclose(y, tensor_ops::matmul(dense, x), 1e-5f));
}

TEST(Csr, TransposeInvolution) {
  Csr c = Csr::from_edges(4, {{0, 1}, {2, 3}, {3, 1}});
  Csr tt = c.transposed().transposed();
  EXPECT_EQ(tt.row_ptr(), c.row_ptr());
  EXPECT_EQ(tt.col_idx(), c.col_idx());
}

TEST(Csr, InducedSubgraphKeepsInternalEdges) {
  Csr c = Csr::from_edges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  Csr sub = c.induced_subgraph({1, 2, 3});
  EXPECT_EQ(sub.num_nodes(), 3);
  EXPECT_EQ(sub.num_edges(), 2);  // 1->2 and 2->3 remapped
  EXPECT_THROW(c.induced_subgraph({1, 1}), std::runtime_error);
}

TEST(SpmmOp, GradientIsTransposeSpmm) {
  Rng rng(2);
  auto c = std::make_shared<const Csr>(
      Csr::from_edges(4, {{0, 1}, {1, 2}, {3, 0}, {2, 2}}));
  ag::Variable x(Tensor::randn({4, 3}, rng), true);
  auto fn = [&c](const std::vector<ag::Variable>& v) {
    return spmm(c, v[0]);
  };
  auto result = ag::grad_check(fn, {x});
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(SpmmOp, SymmetricMatrixReusedForBackward) {
  Rng rng(3);
  auto sym = std::make_shared<const Csr>(triangle().normalized_symmetric(1.f));
  ag::Variable x(Tensor::randn({3, 2}, rng), true);
  ag::Variable y = spmm(sym, x, sym);
  ag::Variable loss = ag::sum_all(y);
  loss.backward();
  // d(sum A x)/dx = A^T 1 = A 1 (symmetric): row sums.
  Tensor expected = sym->spmm(Tensor::ones({3, 2}));
  EXPECT_TRUE(Tensor::allclose(x.grad(), expected, 1e-5f));
}

TEST(Sampler, SubgraphNodesValidAndUnique) {
  Rng rng(4);
  // Path graph 0-1-...-49.
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < 50; ++i) edges.push_back({i, i + 1});
  Csr c = Csr::from_edges_undirected(50, edges);
  RandomWalkSampler sampler(c, 8, 5);
  SaintSample s = sampler.sample(rng);
  std::set<std::int64_t> uniq(s.nodes.begin(), s.nodes.end());
  EXPECT_EQ(uniq.size(), s.nodes.size());
  EXPECT_EQ(s.subgraph.num_nodes(),
            static_cast<std::int64_t>(s.nodes.size()));
  EXPECT_LE(s.nodes.size(), 8u * 6u);
  for (auto v : s.nodes) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(Sampler, NormEstimationGivesPositiveWeights) {
  Rng rng(5);
  Csr c = triangle();
  RandomWalkSampler sampler(c, 2, 3);
  sampler.estimate_norms(rng, 10);
  SaintSample s = sampler.sample(rng);
  for (float w : s.node_weight) EXPECT_GT(w, 0.f);
}

TEST(Sampler, DeadEndWalksTerminate) {
  Rng rng(6);
  // Star with directed edges into the center: walkers stop at the center.
  Csr c = Csr::from_edges(4, {{1, 0}, {2, 0}, {3, 0}});
  RandomWalkSampler sampler(c, 4, 10);
  SaintSample s = sampler.sample(rng);
  EXPECT_GE(s.nodes.size(), 1u);
  EXPECT_LE(s.nodes.size(), 4u);
}

}  // namespace
}  // namespace hoga::graph
