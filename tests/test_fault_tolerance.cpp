// Fault-tolerance layer tests: CRC32/atomic I/O, the hoga-ckpt v2
// TrainState format, bit-exact checkpoint/resume, deterministic fault
// injection, non-finite rollback, elastic self-healing epochs, and the
// full-schedule demo required by the acceptance criteria.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "data/reasoning_dataset.hpp"
#include "fault/fault.hpp"
#include "nn/serialize.hpp"
#include "reasoning/features.hpp"
#include "train/node_trainer.hpp"
#include "train/parallel.hpp"
#include "train/qor_trainer.hpp"
#include "train/train_state.hpp"
#include "util/crc32.hpp"
#include "util/io.hpp"

namespace hoga::train {
namespace {

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(util::crc32("123456789"), 0xCBF43926u);  // the standard check value
  EXPECT_EQ(util::crc32(""), 0u);
  EXPECT_NE(util::crc32("abc"), util::crc32("abd"));
}

TEST(AtomicIo, RoundTripAndClearErrors) {
  const std::string path = "/tmp/hoga_test_atomic_io.txt";
  util::atomic_write_file(path, "hello");
  EXPECT_EQ(util::read_file(path), "hello");
  // No stale temporary left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  // Missing file.
  EXPECT_THROW(util::read_file("/nonexistent/hoga.txt"), std::runtime_error);
  // Empty file (the residue of a failed write) is rejected.
  { std::ofstream out(path, std::ios::trunc); }
  EXPECT_THROW(util::read_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(FaultInjector, ScheduledFaultsFireExactlyOnce) {
  fault::Injector inj(1);
  inj.kill_worker(0, 1);
  EXPECT_FALSE(inj.worker_should_fail(0, 0));
  EXPECT_TRUE(inj.worker_should_fail(0, 1));
  EXPECT_FALSE(inj.worker_should_fail(0, 1));  // consumed: healed retry lives

  inj.fail_checkpoint_write(1);
  EXPECT_FALSE(inj.checkpoint_write_should_fail());  // attempt 0
  EXPECT_TRUE(inj.checkpoint_write_should_fail());   // attempt 1
  EXPECT_FALSE(inj.checkpoint_write_should_fail());  // attempt 2

  inj.corrupt_gradient_step(0);
  EXPECT_TRUE(inj.gradient_should_corrupt());
  EXPECT_FALSE(inj.gradient_should_corrupt());

  EXPECT_EQ(inj.counts().worker_failures, 1);
  EXPECT_EQ(inj.counts().checkpoint_write_errors, 1);
  EXPECT_EQ(inj.counts().gradient_corruptions, 1);
  EXPECT_EQ(inj.counts().checkpoint_read_errors, 0);
}

TEST(FaultInjector, ScopedInstallNestsAndRestores) {
  EXPECT_EQ(fault::active(), nullptr);
  fault::Injector a(1), b(2);
  {
    fault::ScopedInjector sa(a);
    EXPECT_EQ(fault::active(), &a);
    {
      fault::ScopedInjector sb(b);
      EXPECT_EQ(fault::active(), &b);
    }
    EXPECT_EQ(fault::active(), &a);
  }
  EXPECT_EQ(fault::active(), nullptr);
}

class FaultToleranceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = data::make_reasoning_graph("csa", 4, /*mapped=*/false);
    hops_ = core::HopFeatures::compute(*g_.adj_hop, g_.features, 3);
    cfg_.epochs = 12;
    cfg_.batch_size = 64;
    cfg_.lr = 5e-3f;
    cfg_.seed = 3;
  }

  core::Hoga make_hoga(Rng& rng) const {
    return core::Hoga(core::HogaConfig{.in_dim = reasoning::kNodeFeatureDim,
                                       .hidden = 12,
                                       .num_hops = 3,
                                       .num_layers = 1,
                                       .out_dim = 4},
                      rng);
  }

  data::ReasoningGraph g_;
  core::HopFeatures hops_;
  NodeTrainConfig cfg_;
};

TEST_F(FaultToleranceFixture, TrainStateRoundTripIsBitExact) {
  Rng init_a(1);
  core::Hoga a = make_hoga(init_a);
  optim::Adam opt_a(a.parameters(), 2e-3f);
  Rng rng_a(42);
  // A few real steps so Adam moments and the RNG are in a nontrivial state.
  for (int s = 0; s < 3; ++s) {
    opt_a.zero_grad();
    ag::Variable logits =
        a.forward(ag::constant(hops_.gather({0, 1, 2, 3})), rng_a);
    ag::Variable loss = ag::softmax_cross_entropy(
        logits, {g_.labels[0], g_.labels[1], g_.labels[2], g_.labels[3]}, {});
    loss.backward();
    opt_a.step();
  }
  (void)rng_a.normal();  // populate the Box-Muller cache

  TrainState st;
  st.epoch = 2;
  st.epoch_losses = {0.75f, 0.5f};
  const std::string text = save_train_state(a, opt_a, rng_a, st);

  Rng init_b(9);  // different init: everything must come from the checkpoint
  core::Hoga b = make_hoga(init_b);
  optim::Adam opt_b(b.parameters(), 1e-1f);
  Rng rng_b(0);
  const TrainState got = load_train_state(b, opt_b, rng_b, text);

  EXPECT_EQ(got.epoch, 2);
  ASSERT_EQ(got.epoch_losses.size(), 2u);
  EXPECT_EQ(got.epoch_losses[0], 0.75f);
  EXPECT_EQ(got.epoch_losses[1], 0.5f);

  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < pa[i].value().numel(); ++j) {
      EXPECT_EQ(pa[i].value().data()[j], pb[i].value().data()[j]);
    }
  }
  EXPECT_EQ(opt_b.step_count(), opt_a.step_count());
  EXPECT_EQ(opt_b.lr(), opt_a.lr());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t j = 0; j < opt_a.first_moments()[i].numel(); ++j) {
      EXPECT_EQ(opt_a.first_moments()[i].data()[j],
                opt_b.first_moments()[i].data()[j]);
      EXPECT_EQ(opt_a.second_moments()[i].data()[j],
                opt_b.second_moments()[i].data()[j]);
    }
  }
  // The restored generator replays the identical draw sequence (including
  // the cached normal).
  EXPECT_EQ(rng_a.normal(), rng_b.normal());
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

TEST_F(FaultToleranceFixture, CorruptedTrainStateIsRejected) {
  Rng init(1);
  core::Hoga model = make_hoga(init);
  optim::Adam opt(model.parameters(), 1e-3f);
  Rng rng(5);
  TrainState st;
  st.epoch = 1;
  st.epoch_losses = {1.f};
  const std::string text = save_train_state(model, opt, rng, st);

  // A single flipped bit in the payload fails the CRC.
  std::string flipped = text;
  flipped[flipped.size() - 2] ^= 0x4;
  EXPECT_THROW(load_train_state(model, opt, rng, flipped),
               std::runtime_error);
  // Truncation is detected by the declared payload size.
  EXPECT_THROW(
      load_train_state(model, opt, rng, text.substr(0, text.size() - 17)),
      std::runtime_error);
  // Garbage and wrong versions fail loudly.
  EXPECT_THROW(load_train_state(model, opt, rng, "garbage"),
               std::runtime_error);
  EXPECT_THROW(load_train_state(model, opt, rng, "hoga-ckpt v1 3\nx 1 1\n0\n"),
               std::runtime_error);
  // Missing file gives a clear error.
  EXPECT_THROW(load_train_state_file(model, opt, rng, "/nonexistent/c.ckpt"),
               std::runtime_error);
  // An intact checkpoint still loads after all the failed attempts.
  EXPECT_NO_THROW(load_train_state(model, opt, rng, text));
}

TEST_F(FaultToleranceFixture, VersionMismatchGivesClearMessage) {
  Rng init(1);
  core::Hoga model = make_hoga(init);
  optim::Adam opt(model.parameters(), 1e-3f);
  Rng rng(5);
  // A v1 (weights-only) file fed to the TrainState loader must name the
  // version problem, not fail as a generic parse/CRC error.
  const std::string v1 = nn::save_checkpoint(model);
  try {
    load_train_state(model, opt, rng, v1);
    FAIL() << "v1 file accepted by load_train_state";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported checkpoint version"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("v1"), std::string::npos)
        << e.what();
  }
  // Future versions are refused by name as well.
  try {
    load_train_state(model, opt, rng, "hoga-ckpt v9 4 deadbeef\nxxxx");
    FAIL() << "v9 file accepted by load_train_state";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported checkpoint version"),
              std::string::npos)
        << e.what();
  }
  // The reverse direction: a v2 TrainState file fed to the weights-only
  // loader points at load_train_state.
  TrainState st;
  st.epoch = 1;
  st.epoch_losses = {1.f};
  const std::string v2 = save_train_state(model, opt, rng, st);
  try {
    nn::load_checkpoint(model, v2);
    FAIL() << "v2 file accepted by load_checkpoint";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported checkpoint version"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("load_train_state"),
              std::string::npos)
        << e.what();
  }
  // Non-checkpoint garbage still reads as "not a hoga-ckpt file".
  try {
    load_train_state(model, opt, rng, "some random text\n");
    FAIL() << "garbage accepted by load_train_state";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not a hoga-ckpt file"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(FaultToleranceFixture, HogaCheckpointResumeIsBitExact) {
  const std::string path = "/tmp/hoga_test_resume_hoga.ckpt";
  // Uninterrupted reference run.
  Rng r1(1);
  core::Hoga a = make_hoga(r1);
  const auto full = train_hoga_node(a, hops_, g_.labels, cfg_);

  // First half, checkpointing at the midpoint.
  Rng r2(1);
  core::Hoga b = make_hoga(r2);
  auto cfg_half = cfg_;
  cfg_half.epochs = 6;
  cfg_half.checkpoint.path = path;
  cfg_half.checkpoint.every = 6;
  const auto first = train_hoga_node(b, hops_, g_.labels, cfg_half);

  // Resume into a fresh model and finish the run.
  Rng r3(1);
  core::Hoga c = make_hoga(r3);
  auto cfg_resume = cfg_;
  cfg_resume.checkpoint.resume_from = path;
  const auto second = train_hoga_node(c, hops_, g_.labels, cfg_resume);

  EXPECT_EQ(second.fault_stats.resumed_from_epoch, 6);
  ASSERT_EQ(full.epoch_losses.size(), 12u);
  ASSERT_EQ(second.epoch_losses.size(), 12u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(full.epoch_losses[i], first.epoch_losses[i]) << "epoch " << i;
  }
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(full.epoch_losses[i], second.epoch_losses[i]) << "epoch " << i;
  }
  std::remove(path.c_str());
}

TEST_F(FaultToleranceFixture, SignCheckpointResumeIsBitExact) {
  const std::string path = "/tmp/hoga_test_resume_sign.ckpt";
  const models::SignConfig scfg{.in_dim = reasoning::kNodeFeatureDim,
                                .hidden = 12,
                                .out_dim = 4,
                                .num_hops = 3,
                                .mlp_layers = 2};
  Rng r1(4);
  models::Sign a(scfg, r1);
  const auto full = train_sign_node(a, hops_, g_.labels, cfg_);

  Rng r2(4);
  models::Sign b(scfg, r2);
  auto cfg_half = cfg_;
  cfg_half.epochs = 6;
  cfg_half.checkpoint.path = path;
  cfg_half.checkpoint.every = 3;  // also exercises multiple writes
  train_sign_node(b, hops_, g_.labels, cfg_half);

  Rng r3(4);
  models::Sign c(scfg, r3);
  auto cfg_resume = cfg_;
  cfg_resume.checkpoint.resume_from = path;
  const auto second = train_sign_node(c, hops_, g_.labels, cfg_resume);

  EXPECT_EQ(second.fault_stats.resumed_from_epoch, 6);
  ASSERT_EQ(second.epoch_losses.size(), full.epoch_losses.size());
  for (std::size_t i = 0; i < full.epoch_losses.size(); ++i) {
    EXPECT_EQ(full.epoch_losses[i], second.epoch_losses[i]) << "epoch " << i;
  }
  std::remove(path.c_str());
}

TEST_F(FaultToleranceFixture, CheckpointWriteRetriesInjectedIoError) {
  const std::string path = "/tmp/hoga_test_retry.ckpt";
  fault::Injector inj;
  inj.fail_checkpoint_write(0);  // first attempt errors; retry must succeed
  fault::ScopedInjector scope(inj);

  Rng r(1);
  core::Hoga model = make_hoga(r);
  auto cfg = cfg_;
  cfg.epochs = 4;
  cfg.checkpoint.path = path;
  cfg.checkpoint.every = 2;
  const auto log = train_hoga_node(model, hops_, g_.labels, cfg);

  EXPECT_EQ(inj.counts().checkpoint_write_errors, 1);
  EXPECT_EQ(log.fault_stats.checkpoint_retries, 1);
  EXPECT_EQ(log.fault_stats.rollbacks, 0);

  // The surviving file is a valid checkpoint of the final epoch.
  Rng r2(2);
  core::Hoga probe = make_hoga(r2);
  optim::Adam opt(probe.parameters(), cfg.lr);
  Rng rng(0);
  const TrainState st = load_train_state_file(probe, opt, rng, path);
  EXPECT_EQ(st.epoch, 4);
  EXPECT_EQ(st.epoch_losses.size(), 4u);
  std::remove(path.c_str());
}

TEST_F(FaultToleranceFixture, InjectedReadErrorSurfaces) {
  fault::Injector inj;
  inj.fail_checkpoint_read(0);
  fault::ScopedInjector scope(inj);
  Rng r(1);
  core::Hoga model = make_hoga(r);
  optim::Adam opt(model.parameters(), 1e-3f);
  Rng rng(0);
  EXPECT_THROW(load_train_state_file(model, opt, rng, "/tmp/whatever.ckpt"),
               std::runtime_error);
  EXPECT_EQ(inj.counts().checkpoint_read_errors, 1);
}

TEST_F(FaultToleranceFixture, RetentionKeepsLastNAndResumesFromLatest) {
  const std::string base = "/tmp/hoga_test_retention.ckpt";
  auto wipe = [&] {
    for (const auto& [epoch, path] : list_checkpoints(base)) {
      std::remove(path.c_str());
    }
  };
  wipe();

  Rng init(1);
  core::Hoga model = make_hoga(init);
  optim::Adam opt(model.parameters(), 1e-3f);
  Rng rng(7);
  CheckpointConfig ckpt;
  ckpt.path = base;
  ckpt.every = 1;
  ckpt.keep_last = 2;
  LoopStats stats;
  const auto losses = run_fault_tolerant_epochs(
      model, opt, rng, 5, ckpt,
      [&](bool* ok) {
        *ok = true;
        return 0.5;
      },
      &stats);
  EXPECT_EQ(losses.size(), 5u);

  // Five checkpoints were written; only the newest two survive pruning, and
  // the legacy single-file path was never touched.
  const auto found = list_checkpoints(base);
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].first, 4);
  EXPECT_EQ(found[1].first, 5);
  std::ifstream legacy(base);
  EXPECT_FALSE(legacy.good());

  const auto latest = latest_checkpoint(base);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, base + ".e5");

  // The newest stamped checkpoint is a complete, loadable TrainState.
  Rng init2(9);
  core::Hoga probe = make_hoga(init2);
  optim::Adam opt2(probe.parameters(), 1.f);
  Rng rng2(0);
  const TrainState st = load_train_state_file(probe, opt2, rng2, *latest);
  EXPECT_EQ(st.epoch, 5);
  EXPECT_EQ(st.epoch_losses.size(), 5u);
  wipe();
}

// The crash-ordering guarantee: prune_checkpoints runs strictly *after* the
// newer checkpoint's durable write returned. A crash at any kill-point of
// the second checkpoint's write sequence must leave the previous survivor
// on disk — before the rename lands we still have (only) the old file, after
// it we briefly have both, never zero.
TEST_F(FaultToleranceFixture, RetentionPrunesOnlyAfterDurableRename) {
  const std::string base = "/tmp/hoga_test_retention_crash.ckpt";
  auto wipe = [&] {
    for (const auto& [epoch, path] : list_checkpoints(base)) {
      std::remove(path.c_str());
    }
    std::remove((base + ".e2.tmp").c_str());
  };
  wipe();

  CheckpointConfig ckpt;
  ckpt.path = base;
  ckpt.every = 1;
  ckpt.keep_last = 1;

  // Each checkpoint write crosses exactly four storage kill-points
  // (temp_written, temp_synced, renamed, dir_synced), so slot 4 is the
  // second checkpoint's temp_written and slot 6 its renamed boundary.
  auto crash_at = [&](int kill_slot) {
    fault::Injector inj;
    inj.kill_at_storage_point(kill_slot);
    fault::ScopedInjector scope(inj);
    Rng init(1);
    core::Hoga model = make_hoga(init);
    optim::Adam opt(model.parameters(), 1e-3f);
    Rng rng(7);
    bool crashed = false;
    try {
      run_fault_tolerant_epochs(
          model, opt, rng, 3, ckpt,
          [&](bool* ok) {
            *ok = true;
            return 0.5;
          },
          nullptr);
    } catch (const fault::SimulatedCrash&) {
      crashed = true;
    }
    EXPECT_TRUE(crashed) << "kill slot " << kill_slot;
    EXPECT_EQ(inj.counts().storage_kills, 1);
  };

  // Die while epoch 2's temp file is still unsynced: the epoch-1 survivor
  // is intact and resumable; the half-written e2 never became visible.
  crash_at(4);
  {
    const auto found = list_checkpoints(base);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].first, 1);
    const auto latest = latest_checkpoint(base);
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(*latest, base + ".e1");

    // Recovery path: resume from the survivor and finish the run.
    Rng init(1);
    core::Hoga model = make_hoga(init);
    optim::Adam opt(model.parameters(), 1e-3f);
    Rng rng(7);
    auto resume = ckpt;
    resume.resume_from = *latest;
    LoopStats stats;
    const auto losses = run_fault_tolerant_epochs(
        model, opt, rng, 3, resume,
        [&](bool* ok) {
          *ok = true;
          return 0.5;
        },
        &stats);
    EXPECT_EQ(stats.resumed_from_epoch, 1);
    EXPECT_EQ(losses.size(), 3u);
  }
  wipe();

  // Die right after epoch 2's rename but before the prune: BOTH stamped
  // checkpoints are on disk — proof the old one is deleted only once the
  // new one is durably in place.
  crash_at(6);
  {
    const auto found = list_checkpoints(base);
    ASSERT_EQ(found.size(), 2u);
    EXPECT_EQ(found[0].first, 1);
    EXPECT_EQ(found[1].first, 2);

    // The just-renamed e2 is complete and loadable.
    Rng init(3);
    core::Hoga probe = make_hoga(init);
    optim::Adam opt(probe.parameters(), 1.f);
    Rng rng(0);
    const TrainState st =
        load_train_state_file(probe, opt, rng, base + ".e2");
    EXPECT_EQ(st.epoch, 2);
  }
  wipe();
}

TEST_F(FaultToleranceFixture, NanGradientRollsBackWithLrCut) {
  Rng r1(1);
  core::Hoga a = make_hoga(r1);
  const auto clean = train_hoga_node(a, hops_, g_.labels, cfg_);

  fault::Injector inj;
  inj.corrupt_gradient_step(5);
  fault::ScopedInjector scope(inj);
  Rng r2(1);
  core::Hoga b = make_hoga(r2);
  const auto faulted = train_hoga_node(b, hops_, g_.labels, cfg_);

  EXPECT_EQ(inj.counts().gradient_corruptions, 1);
  EXPECT_EQ(faulted.fault_stats.rollbacks, 1);
  ASSERT_EQ(faulted.epoch_losses.size(), clean.epoch_losses.size());
  for (float l : faulted.epoch_losses) EXPECT_TRUE(std::isfinite(l));
  EXPECT_LT(faulted.epoch_losses.back(), faulted.epoch_losses.front());
}

TEST_F(FaultToleranceFixture, NonFiniteWithoutRecoveryThrows) {
  fault::Injector inj;
  inj.corrupt_gradient_step(0);
  fault::ScopedInjector scope(inj);
  Rng r(1);
  core::Hoga model = make_hoga(r);
  auto cfg = cfg_;
  cfg.checkpoint.recover_nonfinite = false;
  EXPECT_THROW(train_hoga_node(model, hops_, g_.labels, cfg),
               std::runtime_error);
}

TEST_F(FaultToleranceFixture, TrainerPreconditionChecks) {
  Rng r(1);
  core::Hoga model = make_hoga(r);
  auto bad_labels = g_.labels;
  bad_labels.pop_back();
  EXPECT_THROW(train_hoga_node(model, hops_, bad_labels, cfg_),
               std::runtime_error);

  auto cfg_weights = cfg_;
  cfg_weights.class_weights = {1.f, 1.f};  // model has 4 classes
  EXPECT_THROW(train_hoga_node(model, hops_, g_.labels, cfg_weights),
               std::runtime_error);

  auto cfg_batch = cfg_;
  cfg_batch.batch_size = 0;
  EXPECT_THROW(train_hoga_node(model, hops_, g_.labels, cfg_batch),
               std::runtime_error);

  Rng rs(2);
  models::Sign sign(models::SignConfig{.in_dim = reasoning::kNodeFeatureDim,
                                       .hidden = 8,
                                       .out_dim = 4,
                                       .num_hops = 3,
                                       .mlp_layers = 2},
                    rs);
  EXPECT_THROW(train_sign_node(sign, hops_, bad_labels, cfg_),
               std::runtime_error);

  Rng rq(3);
  QorModel qor(QorModelConfig{.backbone = QorBackbone::kHoga,
                              .in_dim = 4,
                              .hidden = 8,
                              .num_hops = 2},
               rq);
  QorTrainConfig qcfg;
  qcfg.batch_size = 0;
  EXPECT_THROW(train_qor(qor, {}, {}, qcfg), std::runtime_error);
}

TEST_F(FaultToleranceFixture, ElasticEpochHealsWorkerFailure) {
  fault::Injector inj;
  inj.kill_worker(0, 1);
  fault::ScopedInjector scope(inj);

  Rng r(7);
  core::Hoga model = make_hoga(r);
  NodeTrainConfig tcfg = cfg_;
  tcfg.batch_size = 8;  // several batches per shard, so half survive
  ClusterConfig ccfg;
  ccfg.worker_counts = {4};
  ccfg.epochs_to_time = 1;
  const auto points =
      simulate_hoga_scaling(model, hops_, g_.labels, tcfg, ccfg);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].worker_failures, 1);
  EXPECT_GT(points[0].recovery_seconds, 0.0);
  EXPECT_GE(points[0].epoch_seconds,
            points[0].compute_seconds + points[0].allreduce_seconds);
  EXPECT_EQ(inj.counts().worker_failures, 1);
}

// Acceptance demo: one schedule injecting (a) a worker failure mid-epoch,
// (b) a checkpoint-write I/O error, and (c) a NaN-gradient step. The run
// completes with a final loss comparable to the fault-free run, and a
// resume from the mid-run checkpoint reproduces the loss curve bit-exactly.
TEST_F(FaultToleranceFixture, DemoFullFaultScheduleSurvives) {
  const std::string path = "/tmp/hoga_demo_fault.ckpt";
  // Fault-free reference.
  Rng r1(1);
  core::Hoga a = make_hoga(r1);
  const auto clean = train_hoga_node(a, hops_, g_.labels, cfg_);

  fault::Injector inj(123);
  inj.kill_worker(0, 1);         // (a) dies mid-epoch in the cluster phase
  inj.fail_checkpoint_write(0);  // (b) first checkpoint write attempt errors
  inj.corrupt_gradient_step(5);  // (c) one optimizer step gets a NaN gradient
  fault::ScopedInjector scope(inj);

  // (a) The simulated elastic cluster heals the dead worker.
  {
    Rng rc(2);
    core::Hoga cluster_model = make_hoga(rc);
    NodeTrainConfig tcfg = cfg_;
    tcfg.batch_size = 8;
    ClusterConfig ccfg;
    ccfg.worker_counts = {2};
    ccfg.epochs_to_time = 1;
    const auto pts =
        simulate_hoga_scaling(cluster_model, hops_, g_.labels, tcfg, ccfg);
    EXPECT_EQ(pts[0].worker_failures, 1);
    EXPECT_GT(pts[0].recovery_seconds, 0.0);
  }

  // (b) + (c) The checkpointing trainer retries the failed write and rolls
  // back the poisoned step.
  Rng r2(1);
  core::Hoga b = make_hoga(r2);
  auto fcfg = cfg_;
  fcfg.checkpoint.path = path;
  // 8 does not divide 12, so the one checkpoint on disk is the mid-run
  // epoch-8 state, not a final-epoch snapshot — the resume below actually
  // replays the tail.
  fcfg.checkpoint.every = 8;
  const auto faulted = train_hoga_node(b, hops_, g_.labels, fcfg);

  EXPECT_EQ(inj.counts().checkpoint_write_errors, 1);
  EXPECT_EQ(inj.counts().gradient_corruptions, 1);
  EXPECT_EQ(faulted.fault_stats.checkpoint_retries, 1);
  EXPECT_EQ(faulted.fault_stats.rollbacks, 1);
  ASSERT_EQ(faulted.epoch_losses.size(), clean.epoch_losses.size());
  for (float l : faulted.epoch_losses) EXPECT_TRUE(std::isfinite(l));
  EXPECT_LT(faulted.epoch_losses.back(), faulted.epoch_losses.front());
  // Final loss within tolerance of the fault-free run (the rollback's LR
  // cut perturbs the tail of the trajectory, it must not derail it).
  EXPECT_NEAR(faulted.epoch_losses.back(), clean.epoch_losses.back(),
              0.5f * std::abs(clean.epoch_losses.back()) + 0.05f);

  // Resume from the mid-run checkpoint: the tail replays bit-exactly.
  Rng r3(1);
  core::Hoga c = make_hoga(r3);
  auto rcfg = cfg_;
  rcfg.checkpoint.resume_from = path;
  const auto resumed = train_hoga_node(c, hops_, g_.labels, rcfg);
  EXPECT_EQ(resumed.fault_stats.resumed_from_epoch, 8);
  ASSERT_EQ(resumed.epoch_losses.size(), faulted.epoch_losses.size());
  for (std::size_t i = 0; i < faulted.epoch_losses.size(); ++i) {
    EXPECT_EQ(resumed.epoch_losses[i], faulted.epoch_losses[i])
        << "epoch " << i;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hoga::train
