// Tests for AIGER I/O, DOT export, and model checkpointing.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "aig/aiger.hpp"
#include "aig/dot.hpp"
#include "aig/simulate.hpp"
#include "circuits/arith.hpp"
#include "circuits/ip_designs.hpp"
#include "circuits/multipliers.hpp"
#include "core/hoga_model.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"

namespace hoga {
namespace {

TEST(Aiger, RoundTripPreservesFunction) {
  for (int bits : {2, 4}) {
    const aig::Aig original = circuits::make_csa_multiplier(bits).aig;
    const std::string text = aig::write_aiger(original);
    const aig::Aig parsed = aig::read_aiger(text);
    EXPECT_EQ(parsed.num_pis(), original.num_pis());
    EXPECT_EQ(parsed.num_pos(), original.num_pos());
    EXPECT_TRUE(aig::exhaustive_equivalent(original, parsed)) << bits;
  }
}

TEST(Aiger, RoundTripOnIpDesign) {
  Rng rng(1);
  const auto& spec = circuits::openabcd_specs()[1];  // i2c, small
  const aig::Aig original = circuits::build_ip_design(spec, 200.0);
  const aig::Aig parsed = aig::read_aiger(aig::write_aiger(original));
  EXPECT_TRUE(aig::random_equivalent(original, parsed, rng, 8));
}

TEST(Aiger, HeaderFormat) {
  aig::Aig g;
  const aig::Lit a = g.add_pi();
  const aig::Lit b = g.add_pi();
  g.add_po(g.add_and(a, b));
  const std::string text = aig::write_aiger(g);
  EXPECT_EQ(text.substr(0, 12), "aag 3 2 0 1 ");
}

TEST(Aiger, ParsesComplementedOutputsAndConstants) {
  // Output = NOT input0; second output = constant true.
  const std::string text = "aag 1 1 0 2 0\n2\n3\n1\n";
  const aig::Aig g = aig::read_aiger(text);
  EXPECT_EQ(g.num_pis(), 1);
  EXPECT_EQ(g.num_pos(), 2);
  EXPECT_EQ(aig::evaluate(g, 0), 0b11u);
  EXPECT_EQ(aig::evaluate(g, 1), 0b10u);
}

TEST(Aiger, RejectsMalformedInput) {
  EXPECT_THROW(aig::read_aiger("not aiger"), std::runtime_error);
  EXPECT_THROW(aig::read_aiger("aag 1 0 1 0 0\n"), std::runtime_error);
  // AND uses undefined variable 5.
  EXPECT_THROW(aig::read_aiger("aag 5 1 0 1 1\n2\n4\n4 10 2\n"),
               std::runtime_error);
}

TEST(Aiger, RejectsTruncatedSections) {
  // Input section cut short.
  EXPECT_THROW(aig::read_aiger("aag 2 2 0 0 0\n2\n"), std::runtime_error);
  // Output section missing entirely.
  EXPECT_THROW(aig::read_aiger("aag 3 2 0 1 1\n2\n4\n"), std::runtime_error);
  // AND section cut mid-definition.
  EXPECT_THROW(aig::read_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 4"),
               std::runtime_error);
}

TEST(Aiger, RejectsOutOfRangeLiterals) {
  // Output variable 4 exceeds M=1.
  EXPECT_THROW(aig::read_aiger("aag 1 1 0 1 0\n2\n9\n"), std::runtime_error);
  // AND rhs variable 5 exceeds M=3.
  EXPECT_THROW(aig::read_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 10 2\n"),
               std::runtime_error);
  // Input variable defined twice.
  EXPECT_THROW(aig::read_aiger("aag 2 2 0 0 0\n2\n2\n"), std::runtime_error);
}

TEST(Aiger, RejectsTrailingJunk) {
  EXPECT_THROW(aig::read_aiger("aag 1 1 0 1 0\n2\n2\nxyz\n"),
               std::runtime_error);
  // An extra AND-like definition after the declared sections is junk too.
  EXPECT_THROW(aig::read_aiger("aag 1 1 0 1 0\n2\n2\n4 2 3\n"),
               std::runtime_error);
  // Symbol entries must index a declared input/output.
  EXPECT_THROW(aig::read_aiger("aag 1 1 0 1 0\n2\n2\ni1 a\n"),
               std::runtime_error);
  EXPECT_THROW(aig::read_aiger("aag 1 1 0 1 0\n2\n2\ni99999999999999999999 a\n"),
               std::runtime_error);
}

TEST(Aiger, AcceptsSymbolTableAndComments) {
  const aig::Aig g = aig::read_aiger(
      "aag 1 1 0 1 0\n2\n2\ni0 in_a\no0 out_y\nc\nanything goes here\n");
  EXPECT_EQ(g.num_pis(), 1);
  EXPECT_EQ(g.num_pos(), 1);
  // Output passes the single input through.
  EXPECT_EQ(aig::evaluate(g, 0), 0u);
  EXPECT_EQ(aig::evaluate(g, 1), 1u);
}

TEST(Aiger, FileRoundTrip) {
  const aig::Aig original = circuits::make_ripple_adder(3);
  const std::string path = "/tmp/hoga_test_rca3.aag";
  aig::write_aiger_file(original, path);
  const aig::Aig parsed = aig::read_aiger_file(path);
  EXPECT_TRUE(aig::exhaustive_equivalent(original, parsed));
  std::remove(path.c_str());
  EXPECT_THROW(aig::read_aiger_file("/nonexistent/x.aag"),
               std::runtime_error);
}

TEST(Dot, ContainsNodesEdgesAndStyles) {
  aig::Aig g;
  const aig::Lit a = g.add_pi();
  const aig::Lit b = g.add_pi();
  g.add_po(g.add_and(aig::lit_not(a), b));
  const std::string dot = aig::to_dot(g);
  EXPECT_NE(dot.find("digraph aig"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // inverted edge
  EXPECT_NE(dot.find("triangle"), std::string::npos);      // PI shape
  EXPECT_NE(dot.find("-> o0"), std::string::npos);         // PO marker
}

TEST(Dot, CustomLabelsAndColors) {
  aig::Aig g;
  const aig::Lit a = g.add_pi();
  const aig::Lit b = g.add_pi();
  g.add_po(g.add_and(a, b));
  aig::DotOptions opts;
  opts.node_label = [](aig::NodeId id) {
    return id == 3 ? std::string("AND!") : std::string();
  };
  opts.node_color = [](aig::NodeId id) {
    return id == 3 ? std::string("lightblue") : std::string();
  };
  const std::string dot = aig::to_dot(g, opts);
  EXPECT_NE(dot.find("AND!"), std::string::npos);
  EXPECT_NE(dot.find("lightblue"), std::string::npos);
}

TEST(Dot, RespectsNodeCap) {
  const aig::Aig g = circuits::make_csa_multiplier(8).aig;
  aig::DotOptions opts;
  opts.max_nodes = 10;
  const std::string dot = aig::to_dot(g, opts);
  EXPECT_EQ(dot.find("n500 "), std::string::npos);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  Rng rng(1);
  core::Hoga a(core::HogaConfig{.in_dim = 5, .hidden = 8, .num_hops = 3,
                                .num_layers = 1, .out_dim = 2},
               rng);
  core::Hoga b(core::HogaConfig{.in_dim = 5, .hidden = 8, .num_hops = 3,
                                .num_layers = 1, .out_dim = 2},
               rng);
  // Different init.
  EXPECT_FALSE(Tensor::allclose(a.parameters()[0].value(),
                                b.parameters()[0].value()));
  nn::load_checkpoint(b, nn::save_checkpoint(a));
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(Tensor::allclose(pa[i].value(), pb[i].value(), 1e-5f));
  }
  // Same predictions after restore.
  Rng fwd(0);
  Tensor x = Tensor::randn({4, 4, 5}, rng);
  a.set_training(false);
  b.set_training(false);
  EXPECT_TRUE(Tensor::allclose(
      a.forward(ag::constant(x), fwd).value(),
      b.forward(ag::constant(x), fwd).value(), 1e-5f));
}

TEST(Checkpoint, RejectsArchitectureMismatch) {
  Rng rng(2);
  core::Hoga small(core::HogaConfig{.in_dim = 5, .hidden = 8, .num_hops = 3,
                                    .num_layers = 1, .out_dim = 2},
                   rng);
  core::Hoga big(core::HogaConfig{.in_dim = 5, .hidden = 16, .num_hops = 3,
                                  .num_layers = 1, .out_dim = 2},
                 rng);
  EXPECT_THROW(nn::load_checkpoint(big, nn::save_checkpoint(small)),
               std::runtime_error);
  EXPECT_THROW(nn::load_checkpoint(big, "garbage"), std::runtime_error);
}

TEST(Checkpoint, FileRoundTrip) {
  Rng rng(3);
  nn::Mlp mlp({3, 4, 2}, rng);
  const std::string path = "/tmp/hoga_test_ckpt.txt";
  nn::save_checkpoint_file(mlp, path);
  nn::Mlp restored({3, 4, 2}, rng);
  nn::load_checkpoint_file(restored, path);
  EXPECT_TRUE(Tensor::allclose(mlp.parameters()[0].value(),
                               restored.parameters()[0].value(), 1e-5f));
  std::remove(path.c_str());
}

TEST(Checkpoint, FileWriteIsAtomicAndLoadErrorsAreClear) {
  Rng rng(4);
  nn::Mlp mlp({3, 4, 2}, rng);
  const std::string path = "/tmp/hoga_test_ckpt_atomic.txt";
  nn::save_checkpoint_file(mlp, path);
  // The temporary used for the atomic rename must not linger.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
  // Missing and empty files produce clear errors instead of a blank parse.
  nn::Mlp restored({3, 4, 2}, rng);
  EXPECT_THROW(nn::load_checkpoint_file(restored, "/nonexistent/ckpt.txt"),
               std::runtime_error);
  { std::ofstream out(path, std::ios::trunc); }
  EXPECT_THROW(nn::load_checkpoint_file(restored, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hoga
