// Trainer and metric tests, including the QoR model and the simulated
// cluster scaling machinery.

#include <gtest/gtest.h>

#include "data/reasoning_dataset.hpp"
#include "reasoning/features.hpp"
#include "train/metrics.hpp"
#include "train/node_trainer.hpp"
#include "train/parallel.hpp"
#include "train/qor_trainer.hpp"

namespace hoga::train {
namespace {

TEST(Metrics, MapeDefinition) {
  // |100-90|/100 + |50-55|/50 = 0.1 + 0.1 -> 10%
  EXPECT_NEAR(mape({100, 50}, {90, 55}), 10.0, 1e-9);
  EXPECT_THROW(mape({0.0}, {1.0}), std::runtime_error);
  EXPECT_THROW(mape({1.0}, {1.0, 2.0}), std::runtime_error);
}

TEST(Metrics, AccuracyAndPerClass) {
  Tensor logits = Tensor::from_vector({4, 2}, {2, 1,   // -> 0 (correct)
                                               0, 3,   // -> 1 (correct)
                                               5, 0,   // -> 0 (wrong)
                                               1, 2});  // -> 1 (correct)
  std::vector<int> labels{0, 1, 1, 1};
  EXPECT_NEAR(accuracy(logits, labels), 0.75, 1e-9);
  auto pca = per_class_accuracy(logits, labels, 2);
  EXPECT_NEAR(pca[0], 1.0, 1e-9);
  EXPECT_NEAR(pca[1], 2.0 / 3.0, 1e-9);
  auto cm = confusion_matrix(logits, labels, 2);
  EXPECT_EQ(cm[1][0], 1);
  EXPECT_EQ(cm[1][1], 2);
  EXPECT_EQ(cm[0][0], 1);
}

TEST(Metrics, InverseFrequencyWeights) {
  std::vector<int> labels{0, 0, 0, 1};
  auto w = inverse_frequency_weights(labels, 3);
  EXPECT_GT(w[1], w[0]);
  EXPECT_EQ(w[2], 0.f);  // absent class
  // Mean over present classes is 1.
  EXPECT_NEAR((w[0] + w[1]) / 2.f, 1.f, 1e-5f);
}

class TinyReasoningFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = data::make_reasoning_graph("csa", 4, /*mapped=*/false);
    hops_ = core::HopFeatures::compute(*g_.adj_hop, g_.features, 3);
    cfg_.epochs = 15;
    cfg_.batch_size = 64;
    cfg_.lr = 5e-3f;
    cfg_.seed = 3;
  }
  data::ReasoningGraph g_;
  core::HopFeatures hops_;
  NodeTrainConfig cfg_;
};

TEST_F(TinyReasoningFixture, HogaTrainerReducesLoss) {
  Rng rng(1);
  core::Hoga model(core::HogaConfig{.in_dim = reasoning::kNodeFeatureDim,
                                    .hidden = 12,
                                    .num_hops = 3,
                                    .num_layers = 1,
                                    .out_dim = 4},
                   rng);
  auto log = train_hoga_node(model, hops_, g_.labels, cfg_);
  EXPECT_EQ(log.epoch_losses.size(), 15u);
  EXPECT_LT(log.epoch_losses.back(), log.epoch_losses.front());
  EXPECT_GT(log.seconds, 0.0);
}

TEST_F(TinyReasoningFixture, GcnTrainerReducesLoss) {
  Rng rng(2);
  models::Gcn model(models::GcnConfig{.in_dim = reasoning::kNodeFeatureDim,
                                      .hidden = 12,
                                      .out_dim = 4,
                                      .num_layers = 3},
                    rng);
  auto cfg = cfg_;
  cfg.epochs = 60;
  auto log = train_gcn_node(model, g_.adj_norm, g_.features, g_.labels, cfg);
  EXPECT_LT(log.epoch_losses.back(), log.epoch_losses.front());
  Tensor pred = predict_gcn(model, g_.adj_norm, g_.features);
  EXPECT_EQ(pred.size(0), g_.num_nodes);
}

TEST_F(TinyReasoningFixture, SageTrainerReducesLoss) {
  Rng rng(3);
  models::GraphSage model(
      models::SageConfig{.in_dim = reasoning::kNodeFeatureDim,
                         .hidden = 12,
                         .out_dim = 4,
                         .num_layers = 3},
      rng);
  auto cfg = cfg_;
  cfg.epochs = 60;
  auto log = train_sage_node(model, g_.adj_row, g_.features, g_.labels, cfg);
  EXPECT_LT(log.epoch_losses.back(), log.epoch_losses.front());
}

TEST_F(TinyReasoningFixture, SignTrainerReducesLoss) {
  Rng rng(4);
  models::Sign model(models::SignConfig{.in_dim = reasoning::kNodeFeatureDim,
                                        .hidden = 12,
                                        .out_dim = 4,
                                        .num_hops = 3,
                                        .mlp_layers = 2},
                     rng);
  auto log = train_sign_node(model, hops_, g_.labels, cfg_);
  EXPECT_LT(log.epoch_losses.back(), log.epoch_losses.front());
  Tensor pred = predict_sign(model, hops_);
  EXPECT_EQ(pred.size(0), g_.num_nodes);
}

TEST(QorModelTest, ForwardBothBackbones) {
  data::QorDatasetParams dparams;
  dparams.recipes_per_design = 1;
  dparams.size_scale = 300.0;
  const auto ds = data::QorDataset::generate(dparams);
  for (QorBackbone backbone : {QorBackbone::kGcn, QorBackbone::kHoga}) {
    QorModelConfig cfg;
    cfg.backbone = backbone;
    cfg.in_dim = reasoning::kNodeFeatureDim;
    cfg.hidden = 8;
    cfg.num_hops = 2;
    cfg.gcn_layers = 2;
    std::vector<QorDesignInput> inputs;
    const double precompute = prepare_qor_inputs(ds, cfg, &inputs);
    if (backbone == QorBackbone::kHoga) {
      EXPECT_GT(precompute, 0.0);
      EXPECT_TRUE(inputs[0].hops.has_value());
    } else {
      EXPECT_EQ(precompute, 0.0);
      EXPECT_NE(inputs[0].adj_norm, nullptr);
    }
    Rng rng(5);
    QorModel model(cfg, rng);
    Rng fwd(0);
    ag::Variable pred =
        model.forward(inputs[0], ds.train[0].recipe.token_ids(), fwd);
    EXPECT_EQ(pred.shape(), (Shape{1, 1}));
  }
}

TEST(QorModelTest, TrainingReducesLossAndEvalProducesMape) {
  data::QorDatasetParams dparams;
  dparams.recipes_per_design = 2;
  dparams.size_scale = 300.0;
  const auto ds = data::QorDataset::generate(dparams);
  QorModelConfig cfg;
  cfg.backbone = QorBackbone::kHoga;
  cfg.in_dim = reasoning::kNodeFeatureDim;
  cfg.hidden = 8;
  cfg.num_hops = 2;
  std::vector<QorDesignInput> inputs;
  prepare_qor_inputs(ds, cfg, &inputs);
  Rng rng(6);
  QorModel model(cfg, rng);
  QorTrainConfig tcfg;
  tcfg.epochs = 8;
  tcfg.batch_size = 8;
  auto log = train_qor(model, inputs, ds.train, tcfg);
  EXPECT_EQ(log.epoch_losses.size(), 8u);
  EXPECT_LT(log.epoch_losses.back(), log.epoch_losses.front() + 1e-6f);
  auto eval = evaluate_qor(model, ds, inputs, ds.test);
  EXPECT_EQ(eval.design_names.size(), 9u);
  EXPECT_EQ(eval.scatter.size(), ds.test.size());
  EXPECT_GE(eval.average_mape, 0.0);
  for (double m : eval.design_mape) EXPECT_GE(m, 0.0);
}

TEST(ParallelScaling, ComputeTimeDecreasesWithWorkers) {
  const auto g = data::make_reasoning_graph("csa", 6, /*mapped=*/false);
  auto hops = core::HopFeatures::compute(*g.adj_hop, g.features, 3);
  Rng rng(7);
  core::Hoga model(core::HogaConfig{.in_dim = reasoning::kNodeFeatureDim,
                                    .hidden = 16,
                                    .num_hops = 3,
                                    .num_layers = 1,
                                    .out_dim = 4},
                   rng);
  NodeTrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 64;
  ClusterConfig ccfg;
  ccfg.worker_counts = {1, 2, 4};
  ccfg.epochs_to_time = 1;
  const auto points = simulate_hoga_scaling(model, hops, g.labels, tcfg, ccfg);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].workers, 1);
  EXPECT_NEAR(points[0].speedup, 1.0, 1e-9);
  EXPECT_EQ(points[0].allreduce_seconds, 0.0);
  // Partition-max compute shrinks as workers grow. Compare only the
  // extremes (1 vs 4 workers, expected ~4x apart) so transient CPU
  // contention cannot flip the ordering of adjacent points.
  EXPECT_LT(points[2].compute_seconds, points[0].compute_seconds);
  // Communication is modeled for W > 1.
  EXPECT_GT(points[1].allreduce_seconds, 0.0);
  EXPECT_GT(points[2].speedup, 1.0);
}

}  // namespace
}  // namespace hoga::train
