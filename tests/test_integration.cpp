// Cross-module integration tests: miniature versions of the paper's two
// pipelines running end to end, plus consistency checks that span
// subsystems (synthesis <-> labeling <-> learning).

#include <gtest/gtest.h>

#include <cmath>

#include "aig/simulate.hpp"
#include "circuits/multipliers.hpp"
#include "data/qor_dataset.hpp"
#include "data/reasoning_dataset.hpp"
#include "reasoning/features.hpp"
#include "synth/recipe.hpp"
#include "synth/techmap.hpp"
#include "train/metrics.hpp"
#include "train/node_trainer.hpp"
#include "train/qor_trainer.hpp"

namespace hoga {
namespace {

// Miniature functional-reasoning pipeline: train HOGA on an unmapped 4-bit
// CSA multiplier and verify it transfers to the 8-bit one far above chance.
TEST(Integration, ReasoningTransfersAcrossBitwidth) {
  const auto g4 = data::make_reasoning_graph("csa", 4, /*mapped=*/false);
  const auto g8 = data::make_reasoning_graph("csa", 8, /*mapped=*/false);
  const int K = 4;
  auto hops4 = core::HopFeatures::compute_concat(
      {g4.adj_hop.get(), g4.adj_fanin.get()}, g4.features, K);
  auto hops8 = core::HopFeatures::compute_concat(
      {g8.adj_hop.get(), g8.adj_fanin.get()}, g8.features, K);
  Rng rng(1);
  core::Hoga model(
      core::HogaConfig{.in_dim = 2 * reasoning::kNodeFeatureDim,
                       .hidden = 24,
                       .num_hops = K,
                       .num_layers = 1,
                       .out_dim = reasoning::kNumClasses},
      rng);
  train::NodeTrainConfig cfg;
  cfg.epochs = 120;
  cfg.batch_size = 128;
  cfg.lr = 5e-3f;
  cfg.class_weights =
      train::inverse_frequency_weights(g4.labels, reasoning::kNumClasses);
  train::train_hoga_node(model, hops4, g4.labels, cfg);
  const double train_acc =
      train::accuracy(model.predict(hops4), g4.labels);
  const double transfer_acc =
      train::accuracy(model.predict(hops8), g8.labels);
  EXPECT_GT(train_acc, 0.9);
  EXPECT_GT(transfer_acc, 0.6);  // well above the 25% chance level
}

// Miniature QoR pipeline: both backbones train end to end on a scaled-down
// dataset and produce finite per-design MAPE on the held-out designs.
TEST(Integration, QorPipelineBothBackbones) {
  data::QorDatasetParams dparams;
  dparams.recipes_per_design = 3;
  dparams.size_scale = 200.0;
  dparams.min_recipe_len = 2;
  dparams.max_recipe_len = 5;
  const auto ds = data::QorDataset::generate(dparams);
  for (auto backbone : {train::QorBackbone::kGcn, train::QorBackbone::kHoga}) {
    train::QorModelConfig cfg;
    cfg.backbone = backbone;
    cfg.in_dim = reasoning::kNodeFeatureDim;
    cfg.hidden = 12;
    cfg.num_hops = 3;
    cfg.gcn_layers = 3;
    std::vector<train::QorDesignInput> inputs;
    train::prepare_qor_inputs(ds, cfg, &inputs);
    Rng rng(2);
    train::QorModel model(cfg, rng);
    train::QorTrainConfig tcfg;
    tcfg.epochs = 10;
    auto log = train::train_qor(model, inputs, ds.train, tcfg);
    EXPECT_LT(log.epoch_losses.back(), log.epoch_losses.front());
    auto eval = train::evaluate_qor(model, ds, inputs, ds.test);
    EXPECT_EQ(eval.design_mape.size(), 9u);
    for (double m : eval.design_mape) {
      EXPECT_TRUE(std::isfinite(m));
      EXPECT_LT(m, 200.0);  // sane scale
    }
  }
}

// Synthesis and labeling interact correctly: recipes preserve function AND
// the functional labeler finds adder roots before and after optimization.
TEST(Integration, LabelsSurviveSynthesis) {
  auto lc = circuits::make_csa_multiplier(5);
  Rng rng(3);
  const auto recipe = synth::Recipe::resyn2();
  const auto result = synth::run_recipe(lc.aig, recipe);
  ASSERT_TRUE(aig::exhaustive_equivalent(lc.aig, result.optimized));
  const auto labels_before = reasoning::functional_labels(lc.aig);
  const auto labels_after = reasoning::functional_labels(result.optimized);
  const auto hist_before = reasoning::class_histogram(labels_before);
  const auto hist_after = reasoning::class_histogram(labels_after);
  // Adder structure survives gate-level optimization: XOR/MAJ roots remain.
  EXPECT_GT(hist_after[0] + hist_after[1] + hist_after[2], 0);
  EXPECT_GT(hist_before[1], 0);
}

// The mapped netlist pipeline is self-consistent: mapping preserves the
// multiplier function while changing the label distribution.
TEST(Integration, MappingPreservesFunctionChangesLabels) {
  auto lc = circuits::make_booth_multiplier(4);
  const aig::Aig mapped = synth::tech_map(lc.aig);
  EXPECT_TRUE(aig::exhaustive_equivalent(lc.aig, mapped));
  const auto before =
      reasoning::class_histogram(reasoning::functional_labels(lc.aig));
  const auto after =
      reasoning::class_histogram(reasoning::functional_labels(mapped));
  EXPECT_NE(before, after);
}

// Hop features on the QoR designs respect the phase-1/phase-2 split: the
// HOGA backbone input carries no graph object.
TEST(Integration, HopFeaturePrecomputeIsGraphFree) {
  data::QorDatasetParams dparams;
  dparams.recipes_per_design = 1;
  dparams.size_scale = 300.0;
  const auto ds = data::QorDataset::generate(dparams);
  train::QorModelConfig cfg;
  cfg.backbone = train::QorBackbone::kHoga;
  cfg.in_dim = reasoning::kNodeFeatureDim;
  cfg.hidden = 8;
  cfg.num_hops = 2;
  std::vector<train::QorDesignInput> inputs;
  prepare_qor_inputs(ds, cfg, &inputs);
  for (const auto& in : inputs) {
    EXPECT_TRUE(in.hops.has_value());
    EXPECT_EQ(in.adj_norm, nullptr);  // no adjacency reaches the model
    EXPECT_EQ(in.hops->stacked().dim(), 3);
  }
}

}  // namespace
}  // namespace hoga
