// Unit tests for the tensor subsystem: shapes, element access, kernels.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace hoga {
namespace {

namespace to = tensor_ops;

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(-1), 4);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 0.f);
}

TEST(Tensor, AtAccessRowMajor) {
  Tensor t({2, 3});
  t.at({1, 2}) = 5.f;
  EXPECT_EQ(t.data()[5], 5.f);
  EXPECT_EQ(t.at({1, 2}), 5.f);
  EXPECT_THROW(t.at({2, 0}), std::runtime_error);
  EXPECT_THROW(t.at({0}), std::runtime_error);
}

TEST(Tensor, FactoriesProduceExpectedValues) {
  EXPECT_EQ(Tensor::ones({3})[1], 1.f);
  EXPECT_EQ(Tensor::full({2, 2}, 7.f)[3], 7.f);
  Tensor ar = Tensor::arange(5);
  EXPECT_EQ(ar[4], 4.f);
  Rng rng(1);
  Tensor r = Tensor::randn({100}, rng);
  float mean = to::mean_all(r);
  EXPECT_LT(std::fabs(mean), 0.5f);
  Tensor u = Tensor::uniform({100}, rng, 2.f, 3.f);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_GE(u[i], 2.f);
    EXPECT_LT(u[i], 3.f);
  }
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor t({2, 3});
  Tensor r = t.reshape({3, 2});
  r.at({0, 1}) = 9.f;
  EXPECT_EQ(t.at({0, 1}), 9.f);
  EXPECT_THROW(t.reshape({4, 2}), std::runtime_error);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t({2});
  Tensor c = t.clone();
  c[0] = 1.f;
  EXPECT_EQ(t[0], 0.f);
}

TEST(Tensor, FromVectorValidatesSize) {
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1.f, 2.f}), std::runtime_error);
  Tensor t = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at({1, 0}), 3.f);
}

TEST(TensorOps, ElementwiseBinary) {
  Tensor a = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_vector({2, 2}, {5, 6, 7, 8});
  EXPECT_TRUE(Tensor::allclose(to::add(a, b),
                               Tensor::from_vector({2, 2}, {6, 8, 10, 12})));
  EXPECT_TRUE(Tensor::allclose(to::sub(b, a),
                               Tensor::from_vector({2, 2}, {4, 4, 4, 4})));
  EXPECT_TRUE(Tensor::allclose(to::mul(a, b),
                               Tensor::from_vector({2, 2}, {5, 12, 21, 32})));
  EXPECT_TRUE(Tensor::allclose(to::div(b, a),
                               Tensor::from_vector({2, 2}, {5, 3, 7.f / 3, 2})));
}

TEST(TensorOps, SuffixBroadcast) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor bias = Tensor::from_vector({3}, {10, 20, 30});
  Tensor out = to::add(a, bias);
  EXPECT_TRUE(Tensor::allclose(
      out, Tensor::from_vector({2, 3}, {11, 22, 33, 14, 25, 36})));
  // 3-D broadcast of a [d] vector.
  Tensor c = Tensor::ones({2, 2, 3});
  Tensor out3 = to::mul(c, bias);
  EXPECT_EQ(out3.at({1, 1, 2}), 30.f);
  // Invalid broadcast is an error, not silent.
  EXPECT_THROW(to::add(a, Tensor::ones({2})), std::runtime_error);
}

TEST(TensorOps, MatmulAgainstManual) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = to::matmul(a, b);
  EXPECT_TRUE(Tensor::allclose(
      c, Tensor::from_vector({2, 2}, {58, 64, 139, 154})));
}

TEST(TensorOps, MatmulTransposeFlagsAgree) {
  Rng rng(2);
  Tensor a = Tensor::randn({4, 3}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  // a^T b via flag vs explicit transpose.
  Tensor v1 = to::matmul(a, b, true, false);
  Tensor v2 = to::matmul(to::transpose2d(a), b);
  EXPECT_TRUE(Tensor::allclose(v1, v2, 1e-4f));
  Tensor c = Tensor::randn({3, 4}, rng);
  Tensor w1 = to::matmul(b, c, true, true);
  Tensor w2 = to::matmul(to::transpose2d(b), to::transpose2d(c));
  EXPECT_TRUE(Tensor::allclose(w1, w2, 1e-4f));
}

TEST(TensorOps, BmmMatchesPerSliceMatmul) {
  Rng rng(3);
  Tensor a = Tensor::randn({3, 2, 4}, rng);
  Tensor b = Tensor::randn({3, 4, 5}, rng);
  Tensor c = to::bmm(a, b);
  for (std::int64_t i = 0; i < 3; ++i) {
    Tensor ai = to::slice_rows(a, i, i + 1).reshape({2, 4});
    Tensor bi = to::slice_rows(b, i, i + 1).reshape({4, 5});
    Tensor ci = to::slice_rows(c, i, i + 1).reshape({2, 5});
    EXPECT_TRUE(Tensor::allclose(ci, to::matmul(ai, bi), 1e-4f));
  }
}

TEST(TensorOps, BmmTransposeB) {
  Rng rng(4);
  Tensor q = Tensor::randn({2, 3, 4}, rng);
  Tensor k = Tensor::randn({2, 3, 4}, rng);
  Tensor s = to::bmm(q, k, false, true);
  EXPECT_EQ(s.shape(), (Shape{2, 3, 3}));
  // element check
  float manual = 0;
  for (int d = 0; d < 4; ++d) {
    manual += q.at({1, 2, d}) * k.at({1, 0, d});
  }
  EXPECT_NEAR(s.at({1, 2, 0}), manual, 1e-4f);
}

TEST(TensorOps, ConcatSliceColsRoundTrip) {
  Rng rng(5);
  Tensor a = Tensor::randn({3, 2}, rng);
  Tensor b = Tensor::randn({3, 4}, rng);
  Tensor cat = to::concat_cols({a, b});
  EXPECT_EQ(cat.shape(), (Shape{3, 6}));
  EXPECT_TRUE(Tensor::allclose(to::slice_cols(cat, 0, 2), a));
  EXPECT_TRUE(Tensor::allclose(to::slice_cols(cat, 2, 6), b));
}

TEST(TensorOps, ConcatSliceRowsRoundTrip) {
  Rng rng(6);
  Tensor a = Tensor::randn({2, 3}, rng);
  Tensor b = Tensor::randn({4, 3}, rng);
  Tensor cat = to::concat_rows({a, b});
  EXPECT_EQ(cat.shape(), (Shape{6, 3}));
  EXPECT_TRUE(Tensor::allclose(to::slice_rows(cat, 2, 6), b));
}

TEST(TensorOps, GatherScatterRows) {
  Tensor a = Tensor::from_vector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = to::gather_rows(a, {2, 0, 2});
  EXPECT_TRUE(
      Tensor::allclose(g, Tensor::from_vector({3, 2}, {5, 6, 1, 2, 5, 6})));
  Tensor target = Tensor::zeros({3, 2});
  to::scatter_add_rows(target, {2, 0, 2}, g);
  EXPECT_EQ(target.at({2, 0}), 10.f);  // two contributions of 5
  EXPECT_EQ(target.at({0, 1}), 2.f);
  EXPECT_THROW(to::gather_rows(a, {3}), std::runtime_error);
}

TEST(TensorOps, Reductions) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(to::sum_all(a), 21.f);
  EXPECT_FLOAT_EQ(to::mean_all(a), 3.5f);
  EXPECT_TRUE(Tensor::allclose(to::sum_axis0(a),
                               Tensor::from_vector({3}, {5, 7, 9})));
  EXPECT_TRUE(Tensor::allclose(to::sum_lastdim(a),
                               Tensor::from_vector({2}, {6, 15})));
  EXPECT_TRUE(Tensor::allclose(to::mean_lastdim(a),
                               Tensor::from_vector({2}, {2, 5})));
  EXPECT_NEAR(to::frobenius_norm(a), std::sqrt(91.f), 1e-4f);
}

TEST(TensorOps, SoftmaxRowsSumToOneAndOrderPreserved) {
  Rng rng(7);
  Tensor a = Tensor::randn({4, 6}, rng);
  Tensor s = to::softmax_lastdim(a);
  for (std::int64_t i = 0; i < 4; ++i) {
    float sum = 0;
    for (std::int64_t j = 0; j < 6; ++j) {
      const float v = s.at({i, j});
      EXPECT_GT(v, 0.f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.f, 1e-5f);
  }
  // Monotonic: argmax preserved.
  EXPECT_EQ(std::max_element(a.data(), a.data() + 6) - a.data(),
            std::max_element(s.data(), s.data() + 6) - s.data());
}

TEST(TensorOps, SoftmaxNumericallyStableForLargeInputs) {
  Tensor a = Tensor::from_vector({1, 3}, {1000.f, 1001.f, 999.f});
  Tensor s = to::softmax_lastdim(a);
  EXPECT_FALSE(std::isnan(s[0]));
  EXPECT_NEAR(s[0] + s[1] + s[2], 1.f, 1e-5f);
}

TEST(TensorOps, LayerNormProperties) {
  Rng rng(8);
  Tensor a = Tensor::randn({5, 16}, rng);
  auto r = to::layer_norm_lastdim(a);
  for (std::int64_t i = 0; i < 5; ++i) {
    double mean = 0, var = 0;
    for (std::int64_t j = 0; j < 16; ++j) mean += r.y.at({i, j});
    mean /= 16;
    for (std::int64_t j = 0; j < 16; ++j) {
      var += (r.y.at({i, j}) - mean) * (r.y.at({i, j}) - mean);
    }
    var /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(TensorOps, UnaryMaps) {
  Tensor a = Tensor::from_vector({4}, {-1, 0, 1, 2});
  EXPECT_TRUE(Tensor::allclose(to::relu(a),
                               Tensor::from_vector({4}, {0, 0, 1, 2})));
  EXPECT_TRUE(Tensor::allclose(to::relu_mask(a),
                               Tensor::from_vector({4}, {0, 0, 1, 1})));
  EXPECT_NEAR(to::sigmoid(a)[0], 1.f / (1.f + std::exp(1.f)), 1e-5f);
  EXPECT_NEAR(to::exp(a)[3], std::exp(2.f), 1e-4f);
  EXPECT_NEAR(to::tanh(a)[3], std::tanh(2.f), 1e-5f);
}

TEST(TensorOps, StackAddsLeadingAxis) {
  Tensor a = Tensor::ones({2, 2});
  Tensor b = Tensor::zeros({2, 2});
  Tensor s = to::stack({a, b});
  EXPECT_EQ(s.shape(), (Shape{2, 2, 2}));
  EXPECT_EQ(s.at({0, 1, 1}), 1.f);
  EXPECT_EQ(s.at({1, 1, 1}), 0.f);
}

TEST(TensorOps, AxpyInplace) {
  Tensor a = Tensor::ones({3});
  Tensor b = Tensor::from_vector({3}, {1, 2, 3});
  to::axpy_inplace(a, 2.f, b);
  EXPECT_TRUE(Tensor::allclose(a, Tensor::from_vector({3}, {3, 5, 7})));
}

}  // namespace
}  // namespace hoga
