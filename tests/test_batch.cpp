// hoga::batch tests: bit-exact coalescing vs sequential forwards, close
// triggers (row cap / deadline slack / linger / shape fault line), priority
// lane ordering, tenant token-bucket quotas, lane-depth backpressure, and
// byte-identical stats under a scripted obs::FakeClock (DESIGN.md §14).

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "autograd/ops.hpp"
#include "batch/batch.hpp"
#include "core/hoga_model.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "tensor/tensor.hpp"

namespace hoga::batch {
namespace {

core::HogaConfig small_config(std::int64_t in_dim = 4) {
  return {.in_dim = in_dim,
          .hidden = 8,
          .num_hops = 3,
          .num_layers = 1,
          .out_dim = 3,
          .dropout = 0.25f};  // non-zero on purpose: eval must ignore it
}

Tensor random_rows(std::int64_t rows, std::int64_t hops, std::int64_t dim,
                   std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({rows, hops, dim}, rng);
}

bool bit_equal(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Records every coalesced forward (rows, hops) and returns a shape-correct
/// output so tests can assert batch composition and execution order without
/// a real model.
struct RecordingForward {
  std::vector<std::pair<std::int64_t, std::int64_t>> calls;
  Tensor operator()(const Tensor& input) {
    calls.emplace_back(input.size(0), input.size(1));
    return Tensor::zeros({input.size(0), 1});
  }
};

// ---------------------------------------------------------------------------
// Bit-exactness: the tentpole contract. A request's slice of a coalesced
// forward must be byte-identical to its own solo forward for ANY
// interleaving of co-batched requests.
// ---------------------------------------------------------------------------

TEST(Batch, CoalescedForwardIsBitExactVsSequential) {
  Rng rng(7);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  const auto forward = [&](const Tensor& input) {
    return model.forward_eval(ag::constant(input)).value();
  };

  obs::FakeClock clock(0, 1000);
  BatchConfig bc;
  bc.max_batch_rows = 64;
  bc.background = false;
  bc.clock = &clock;
  BatchScheduler sched(bc, forward);

  // Mixed sizes, mixed lanes, arbitrary interleaving — all coalesce.
  const std::vector<std::int64_t> sizes = {5, 1, 9, 3, 7, 2, 11, 4};
  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    inputs.push_back(
        random_rows(sizes[i], cfg.num_hops + 1, cfg.in_dim, 100 + i));
    const Lane lane = (i % 3 == 0) ? Lane::kBulk : Lane::kInteractive;
    SubmitResult r = sched.submit(inputs.back(), lane, 0, 1000.0);
    ASSERT_TRUE(r.admitted);
    futures.push_back(std::move(r.output));
  }
  EXPECT_GT(sched.flush(), 0);

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const Tensor got = futures[i].get();
    const Tensor expect = model.forward_eval(ag::constant(inputs[i])).value();
    ASSERT_EQ(got.numel(), expect.numel());
    // memcmp, not allclose: the scatter of a coalesced forward must be
    // byte-identical to the solo forward (kernel row independence,
    // DESIGN.md §11).
    EXPECT_TRUE(bit_equal(got, expect)) << "request " << i;
  }

  const BatchStats s = sched.stats();
  EXPECT_EQ(s.submitted, static_cast<long long>(sizes.size()));
  EXPECT_EQ(s.rows, 5 + 1 + 9 + 3 + 7 + 2 + 11 + 4);
  EXPECT_EQ(s.failed_batches, 0);
}

// ---------------------------------------------------------------------------
// Close triggers.
// ---------------------------------------------------------------------------

TEST(Batch, RowCapClosesBatchInline) {
  RecordingForward fwd;
  obs::FakeClock clock(0, 1000);
  BatchConfig bc;
  bc.max_batch_rows = 8;
  bc.background = false;
  bc.clock = &clock;
  BatchScheduler sched(bc, [&fwd](const Tensor& t) { return fwd(t); });

  auto r1 = sched.submit(random_rows(4, 4, 4, 1), Lane::kInteractive, 0, 1e6);
  ASSERT_TRUE(r1.admitted);
  EXPECT_EQ(sched.stats().batches, 0);  // below cap: still lingering
  auto r2 = sched.submit(random_rows(4, 4, 4, 2), Lane::kInteractive, 0, 1e6);
  ASSERT_TRUE(r2.admitted);

  // Cap reached: manual mode executes inline, without waiting for pump().
  const BatchStats s = sched.stats();
  EXPECT_EQ(s.batches, 1);
  EXPECT_EQ(s.rows, 8);
  EXPECT_EQ(s.closed_row_cap, 1);
  ASSERT_EQ(fwd.calls.size(), 1u);
  EXPECT_EQ(fwd.calls[0].first, 8);  // one coalesced [8, k+1, d0] forward
  r1.output.get();
  r2.output.get();
}

TEST(Batch, DeadlineSlackBelowEwmaForwardTimeClosesEarly) {
  RecordingForward fwd;
  obs::FakeClock clock(0, 1000);
  BatchConfig bc;
  bc.max_batch_rows = 64;
  bc.max_linger_ms = 50.0;        // linger far away: deadline must fire first
  bc.initial_forward_ms = 2.0;    // EWMA prior
  bc.background = false;
  bc.clock = &clock;
  BatchScheduler sched(bc, [&fwd](const Tensor& t) { return fwd(t); });

  // Slack 20 ms >> EWMA 2 ms: not due yet.
  auto r = sched.submit(random_rows(3, 4, 4, 1), Lane::kInteractive, 0, 20.0);
  ASSERT_TRUE(r.admitted);
  EXPECT_EQ(sched.pump(), 0);

  // Advance until slack (20 ms from enqueue) dips below the 2 ms estimate:
  // the batch must close NOW or the request would miss its deadline.
  clock.advance(19 * 1000 * 1000);
  EXPECT_EQ(sched.pump(), 1);
  const BatchStats s = sched.stats();
  EXPECT_EQ(s.closed_deadline, 1);
  EXPECT_EQ(s.closed_linger, 0);
  r.output.get();
}

TEST(Batch, MaxLingerBoundsOldestRequestWait) {
  RecordingForward fwd;
  obs::FakeClock clock(0, 1000);
  BatchConfig bc;
  bc.max_batch_rows = 64;
  bc.max_linger_ms = 2.0;
  bc.background = false;
  bc.clock = &clock;
  BatchScheduler sched(bc, [&fwd](const Tensor& t) { return fwd(t); });

  auto r = sched.submit(random_rows(2, 4, 4, 1), Lane::kBulk, 0, 1e6);
  ASSERT_TRUE(r.admitted);
  EXPECT_EQ(sched.pump(), 0);  // deadline is far; linger not yet elapsed

  clock.advance(3 * 1000 * 1000);  // 3 ms > max_linger_ms
  EXPECT_EQ(sched.pump(), 1);
  EXPECT_EQ(sched.stats().closed_linger, 1);
  r.output.get();
}

TEST(Batch, ShapeFaultLineSplitsIncompatibleRequests) {
  RecordingForward fwd;
  obs::FakeClock clock(0, 1000);
  BatchConfig bc;
  bc.max_batch_rows = 64;
  bc.background = false;
  bc.clock = &clock;
  BatchScheduler sched(bc, [&fwd](const Tensor& t) { return fwd(t); });

  // Hop-count 4 then hop-count 3 (legal per-request truncation, DESIGN.md
  // §8) cannot share a concatenated forward.
  auto r1 = sched.submit(random_rows(2, 4, 4, 1), Lane::kInteractive, 0, 1e6);
  auto r2 = sched.submit(random_rows(2, 3, 4, 2), Lane::kInteractive, 0, 1e6);
  ASSERT_TRUE(r1.admitted && r2.admitted);
  EXPECT_EQ(sched.flush(), 2);

  ASSERT_EQ(fwd.calls.size(), 2u);
  EXPECT_EQ(fwd.calls[0].second, 4);  // first batch: the 4-hop request alone
  EXPECT_EQ(fwd.calls[1].second, 3);
  const BatchStats s = sched.stats();
  EXPECT_EQ(s.batches, 2);
  EXPECT_EQ(s.closed_shape, 1);
  EXPECT_EQ(s.closed_flush, 1);
  r1.output.get();
  r2.output.get();
}

// ---------------------------------------------------------------------------
// Priority lanes: an interactive request is never stuck behind a full bulk
// batch — whenever both lanes are runnable, interactive executes first.
// ---------------------------------------------------------------------------

TEST(Batch, InteractiveLaneDrainsBeforeFullBulkLane) {
  std::vector<std::string> order;
  obs::FakeClock clock(0, 1000);
  BatchConfig bc;
  bc.max_batch_rows = 64;
  bc.max_linger_ms = 1.0;
  bc.background = false;
  bc.clock = &clock;
  BatchScheduler sched(bc, [&order](const Tensor& t) {
    order.push_back(t.size(0) == 32 ? "bulk" : "interactive");
    return Tensor::zeros({t.size(0), 1});
  });

  // Bulk arrives first and is older; interactive arrives later. Both become
  // due (linger) — interactive must still run first.
  auto rb = sched.submit(random_rows(32, 4, 4, 1), Lane::kBulk, 0, 1e6);
  auto ri = sched.submit(random_rows(2, 4, 4, 2), Lane::kInteractive, 0, 1e6);
  ASSERT_TRUE(rb.admitted && ri.admitted);
  clock.advance(2 * 1000 * 1000);
  EXPECT_EQ(sched.pump(), 2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "interactive");
  EXPECT_EQ(order[1], "bulk");
  rb.output.get();
  ri.output.get();
}

// ---------------------------------------------------------------------------
// Admission control: tenant token buckets and lane-depth backpressure.
// ---------------------------------------------------------------------------

TEST(Batch, TenantTokenBucketRejectsWithRefillTimeHint) {
  RecordingForward fwd;
  obs::FakeClock clock(0, 1000);
  BatchConfig bc;
  bc.max_batch_rows = 64;
  bc.background = false;
  bc.clock = &clock;
  bc.tenant_rows_per_sec = 10.0;
  bc.tenant_burst_rows = 10.0;
  BatchScheduler sched(bc, [&fwd](const Tensor& t) { return fwd(t); });

  // Tenant 1 spends 8 of its 10 burst rows, then asks for 8 more.
  auto ok = sched.submit(random_rows(8, 4, 4, 1), Lane::kBulk, 1, 1e6);
  ASSERT_TRUE(ok.admitted);
  auto rej = sched.submit(random_rows(8, 4, 4, 2), Lane::kBulk, 1, 1e6);
  EXPECT_FALSE(rej.admitted);
  EXPECT_EQ(rej.reject_reason, "tenant quota exceeded");
  // Needs ~6 more rows at 10 rows/s: the hint is the actual refill time
  // (~600 ms), not a flat constant.
  EXPECT_GT(rej.retry_after_ms, 400.0);
  EXPECT_LT(rej.retry_after_ms, 800.0);

  // Independent buckets: tenant 2 is untouched; tenant 0 is exempt.
  EXPECT_TRUE(sched.submit(random_rows(8, 4, 4, 3), Lane::kBulk, 2, 1e6)
                  .admitted);
  EXPECT_TRUE(sched.submit(random_rows(8, 4, 4, 4), Lane::kBulk, 0, 1e6)
                  .admitted);

  // Refill: after 1 simulated second the rejected tenant fits again.
  clock.advance(1000ull * 1000 * 1000);
  EXPECT_TRUE(sched.submit(random_rows(8, 4, 4, 5), Lane::kBulk, 1, 1e6)
                  .admitted);
  EXPECT_EQ(sched.stats().rejected_quota, 1);
  sched.flush();
}

TEST(Batch, FullLaneRejectsWithDrainEstimateHint) {
  RecordingForward fwd;
  obs::FakeClock clock(0, 1000);
  BatchConfig bc;
  bc.max_batch_rows = 64;   // above max_lane_rows: no inline cap close
  bc.max_lane_rows = 8;
  bc.max_linger_ms = 1e6;   // nothing closes on its own in this test
  bc.initial_forward_ms = 5.0;
  bc.background = false;
  bc.clock = &clock;
  BatchScheduler sched(bc, [&fwd](const Tensor& t) { return fwd(t); });

  auto a = sched.submit(random_rows(3, 4, 4, 1), Lane::kBulk, 0, 1e6);
  auto b = sched.submit(random_rows(3, 4, 4, 2), Lane::kBulk, 0, 1e6);
  // Third submit still sees 6 pending rows < 8: admitted, lane now past
  // its bound at 9.
  auto c = sched.submit(random_rows(3, 4, 4, 3), Lane::kBulk, 0, 1e6);
  ASSERT_TRUE(a.admitted);
  ASSERT_TRUE(b.admitted);
  ASSERT_TRUE(c.admitted);

  auto rej = sched.submit(random_rows(1, 4, 4, 4), Lane::kBulk, 0, 1e6);
  EXPECT_FALSE(rej.admitted);
  EXPECT_EQ(rej.reject_reason, "lane full");
  // 9 pending rows fit one 64-row batch: 1 batch × the 5 ms EWMA estimate.
  EXPECT_NEAR(rej.retry_after_ms, 5.0, 0.5);
  EXPECT_EQ(sched.stats().rejected_depth, 1);

  // The interactive lane is NOT full — depth bounds are per lane.
  EXPECT_TRUE(sched.submit(random_rows(1, 4, 4, 5), Lane::kInteractive, 0, 1e6)
                  .admitted);
  sched.flush();
}

// ---------------------------------------------------------------------------
// Failure and shutdown paths.
// ---------------------------------------------------------------------------

TEST(Batch, FailedForwardPropagatesToEveryCoalescedFuture) {
  obs::FakeClock clock(0, 1000);
  BatchConfig bc;
  bc.background = false;
  bc.clock = &clock;
  BatchScheduler sched(bc, [](const Tensor&) -> Tensor {
    throw std::runtime_error("model exploded");
  });

  auto r1 = sched.submit(random_rows(2, 4, 4, 1), Lane::kInteractive, 0, 1e6);
  auto r2 = sched.submit(random_rows(3, 4, 4, 2), Lane::kInteractive, 0, 1e6);
  ASSERT_TRUE(r1.admitted && r2.admitted);
  EXPECT_EQ(sched.flush(), 1);
  EXPECT_THROW(r1.output.get(), std::runtime_error);
  EXPECT_THROW(r2.output.get(), std::runtime_error);
  const BatchStats s = sched.stats();
  EXPECT_EQ(s.failed_batches, 1);
  EXPECT_EQ(s.batches, 1);
}

TEST(Batch, DestructorDrainsPendingRequests) {
  RecordingForward fwd;
  obs::FakeClock clock(0, 1000);
  std::future<Tensor> pending;
  {
    BatchConfig bc;
    bc.background = false;
    bc.clock = &clock;
    BatchScheduler sched(bc, [&fwd](const Tensor& t) { return fwd(t); });
    auto r = sched.submit(random_rows(2, 4, 4, 1), Lane::kBulk, 0, 1e6);
    ASSERT_TRUE(r.admitted);
    pending = std::move(r.output);
    // No pump, no flush: the destructor must drain (reason kFlush).
  }
  EXPECT_EQ(pending.get().size(0), 2);
  ASSERT_EQ(fwd.calls.size(), 1u);
}

TEST(Batch, BackgroundExecutorCoalescesAndResolvesFutures) {
  Rng rng(11);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  BatchConfig bc;
  bc.max_batch_rows = 32;
  bc.max_linger_ms = 1.0;
  bc.background = true;  // real executor thread on the steady clock
  BatchScheduler sched(bc, [&](const Tensor& input) {
    return model.forward_eval(ag::constant(input)).value();
  });

  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 6; ++i) {
    inputs.push_back(random_rows(3, cfg.num_hops + 1, cfg.in_dim, 20 + i));
    auto r = sched.submit(inputs.back(), Lane::kInteractive, 0, 500.0);
    ASSERT_TRUE(r.admitted);
    futures.push_back(std::move(r.output));
  }
  for (int i = 0; i < 6; ++i) {
    const Tensor got = futures[i].get();
    const Tensor expect = model.forward_eval(ag::constant(inputs[i])).value();
    EXPECT_TRUE(bit_equal(got, expect)) << "request " << i;
  }
  EXPECT_EQ(sched.stats().submitted, 6);
  EXPECT_GE(sched.stats().batches, 1);
}

// ---------------------------------------------------------------------------
// Work-conserving close: with linger/deadline far in the future, an idle
// executor still runs a lane once it passes eager_close_fraction of the
// row cap instead of sleeping on queued work. Without the eager close this
// test would block on the 10s linger timer.
// ---------------------------------------------------------------------------

TEST(Batch, IdleExecutorClosesEagerlyPastFractionOfRowCap) {
  Rng rng(12);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  BatchConfig bc;
  bc.max_batch_rows = 64;
  bc.max_linger_ms = 10000.0;          // never fires within the test
  bc.eager_close_fraction = 0.5;       // idle executor closes at >= 32 rows
  bc.background = true;
  BatchScheduler sched(bc, [&](const Tensor& input) {
    return model.forward_eval(ag::constant(input)).value();
  });

  std::vector<Tensor> inputs;
  std::vector<std::future<Tensor>> futures;
  for (int i = 0; i < 5; ++i) {  // 40 rows: past the threshold, under the cap
    inputs.push_back(random_rows(8, cfg.num_hops + 1, cfg.in_dim, 40 + i));
    auto r = sched.submit(inputs.back(), Lane::kBulk, 0, 60000.0);
    ASSERT_TRUE(r.admitted);
    futures.push_back(std::move(r.output));
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(30)),
              std::future_status::ready)
        << "eager close never fired; request " << i << " stuck on linger";
    const Tensor got = futures[i].get();
    const Tensor expect = model.forward_eval(ag::constant(inputs[i])).value();
    EXPECT_TRUE(bit_equal(got, expect)) << "request " << i;
  }
  EXPECT_GE(sched.stats().closed_eager, 1);
}

// ---------------------------------------------------------------------------
// Determinism: a scripted schedule under obs::FakeClock produces
// byte-identical stats signatures and metric snapshots across runs.
// ---------------------------------------------------------------------------

TEST(Batch, ScriptedScheduleIsByteIdenticalAcrossRuns) {
  const auto run = [] {
    obs::FakeClock clock(0, 1000);
    obs::MetricsRegistry metrics(true);
    RecordingForward fwd;
    BatchConfig bc;
    bc.max_batch_rows = 8;
    bc.max_linger_ms = 2.0;
    bc.initial_forward_ms = 1.0;
    bc.tenant_rows_per_sec = 16.0;
    bc.background = false;
    bc.clock = &clock;
    bc.metrics = &metrics;
    BatchScheduler sched(bc, [&fwd](const Tensor& t) { return fwd(t); });

    sched.submit(random_rows(4, 4, 4, 1), Lane::kInteractive, 1, 100.0);
    sched.submit(random_rows(4, 4, 4, 2), Lane::kInteractive, 1, 100.0);
    sched.submit(random_rows(16, 4, 4, 3), Lane::kBulk, 1, 100.0);  // quota
    sched.submit(random_rows(2, 4, 4, 4), Lane::kBulk, 2, 100.0);
    clock.advance(3 * 1000 * 1000);
    sched.pump();
    sched.submit(random_rows(3, 4, 4, 5), Lane::kInteractive, 0, 0.5);
    sched.pump();  // deadline close: slack already below the EWMA estimate
    sched.flush();
    return std::make_pair(sched.stats().counts_signature(),
                          metrics.text_snapshot());
  };

  const auto [sig_a, snap_a] = run();
  const auto [sig_b, snap_b] = run();
  EXPECT_EQ(sig_a, sig_b);
  EXPECT_EQ(snap_a, snap_b);  // byte-identical, quantiles included
  // The signature is exact, so pin it: any counting change must be a
  // deliberate contract change.
  EXPECT_EQ(sig_a,
            "submitted=4 rejected_quota=1 rejected_depth=0 batches=3 "
            "rows=13 failed_batches=0 closed_row_cap=1 closed_deadline=1 "
            "closed_linger=1 closed_shape=0 closed_flush=0 closed_eager=0");
}

// ---------------------------------------------------------------------------
// Serve integration: InferenceService with batching on serves bit-exact
// outputs and folds scheduler counters into ServeStats.
// ---------------------------------------------------------------------------

TEST(Batch, ServeBatchingIsBitExactAndCountsBatches) {
  Rng rng(3);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  serve::ServeConfig scfg{.workers = 2};
  scfg.batching = true;
  scfg.batch.max_batch_rows = 64;
  scfg.batch.max_linger_ms = 5.0;
  serve::InferenceService svc(model, scfg);

  constexpr int kClients = 8;
  std::vector<Tensor> inputs;
  for (int i = 0; i < kClients; ++i) {
    inputs.push_back(
        random_rows(3 + i, cfg.num_hops + 1, cfg.in_dim, 40 + i));
  }
  std::vector<serve::Response> responses(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      serve::Request req;
      req.hop_batch = inputs[i];
      req.deadline_ms = 30000;
      req.lane = (i % 2 == 0) ? Lane::kInteractive : Lane::kBulk;
      responses[i] = svc.infer(req);
    });
  }
  for (auto& t : clients) t.join();

  for (int i = 0; i < kClients; ++i) {
    ASSERT_EQ(responses[i].outcome, serve::Outcome::kServed)
        << responses[i].error;
    const Tensor expect = model.forward_eval(ag::constant(inputs[i])).value();
    EXPECT_TRUE(bit_equal(responses[i].output, expect)) << "client " << i;
  }
  const serve::ServeStats s = svc.stats();
  EXPECT_EQ(s.served, kClients);
  EXPECT_EQ(s.batched, kClients);
  EXPECT_GE(s.batches, 1);
  EXPECT_LE(s.batches, kClients);
  // The extended signature carries the batch counters.
  EXPECT_NE(s.counts_signature().find("batched=8"), std::string::npos);
}

TEST(Batch, ServeTenantQuotaSurfacesAsOverloadWithRetryHint) {
  Rng rng(5);
  const auto cfg = small_config();
  core::Hoga model(cfg, rng);
  serve::ServeConfig scfg{.workers = 1};
  scfg.batching = true;
  scfg.batch.max_linger_ms = 0.5;
  scfg.batch.tenant_rows_per_sec = 4.0;
  scfg.batch.tenant_burst_rows = 4.0;
  serve::InferenceService svc(model, scfg);

  serve::Request req;
  req.hop_batch = random_rows(4, cfg.num_hops + 1, cfg.in_dim, 9);
  req.tenant_id = 7;
  req.deadline_ms = 30000;
  ASSERT_EQ(svc.infer(req).outcome, serve::Outcome::kServed);

  // Burst spent: the next 4-row request from tenant 7 is over quota.
  serve::Response r = svc.infer(req);
  EXPECT_EQ(r.outcome, serve::Outcome::kRejectedOverload);
  EXPECT_GT(r.retry_after_ms, 0.0);
  EXPECT_EQ(svc.stats().batch_quota_rejected, 1);
  // Other tenants are unaffected.
  req.tenant_id = 8;
  EXPECT_EQ(svc.infer(req).outcome, serve::Outcome::kServed);
}

}  // namespace
}  // namespace hoga::batch
