// Tests for HOGA core (hop features, gated attention, model) and the
// baseline models (GCN, GraphSAGE, SIGN, GraphSAINT).

#include <gtest/gtest.h>

#include "autograd/gradcheck.hpp"
#include "core/gated_attention.hpp"
#include "core/hoga_model.hpp"
#include "core/hop_features.hpp"
#include "models/gcn.hpp"
#include "models/graphsage.hpp"
#include "models/saint.hpp"
#include "models/sign.hpp"
#include "tensor/ops.hpp"

namespace hoga {
namespace {

graph::Csr path_graph(int n) {
  std::vector<graph::Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return graph::Csr::from_edges_undirected(n, edges);
}

TEST(HopFeatures, HopZeroIsRawInput) {
  Rng rng(1);
  graph::Csr adj = path_graph(6).normalized_symmetric(0.f);
  Tensor x = Tensor::randn({6, 3}, rng);
  auto hf = core::HopFeatures::compute(adj, x, 4);
  EXPECT_EQ(hf.num_nodes(), 6);
  EXPECT_EQ(hf.feature_dim(), 3);
  EXPECT_EQ(hf.num_hops(), 4);
  EXPECT_EQ(hf.stacked().shape(), (Shape{6, 5, 3}));
  for (std::int64_t i = 0; i < 6; ++i) {
    for (std::int64_t d = 0; d < 3; ++d) {
      EXPECT_FLOAT_EQ(hf.stacked().at({i, 0, d}), x.at({i, d}));
    }
  }
}

TEST(HopFeatures, HopKEqualsIteratedSpmm) {
  Rng rng(2);
  graph::Csr adj = path_graph(5).normalized_symmetric(1.f);
  Tensor x = Tensor::randn({5, 2}, rng);
  auto hf = core::HopFeatures::compute(adj, x, 3);
  Tensor cur = x;
  for (int k = 1; k <= 3; ++k) {
    cur = adj.spmm(cur);
    for (std::int64_t i = 0; i < 5; ++i) {
      for (std::int64_t d = 0; d < 2; ++d) {
        EXPECT_NEAR(hf.stacked().at({i, k, d}), cur.at({i, d}), 1e-5f);
      }
    }
  }
}

TEST(HopFeatures, GatherSelectsNodeRows) {
  Rng rng(3);
  graph::Csr adj = path_graph(5).normalized_symmetric(0.f);
  Tensor x = Tensor::randn({5, 2}, rng);
  auto hf = core::HopFeatures::compute(adj, x, 2);
  Tensor batch = hf.gather({4, 1});
  EXPECT_EQ(batch.shape(), (Shape{2, 3, 2}));
  EXPECT_FLOAT_EQ(batch.at({0, 0, 0}), x.at({4, 0}));
  EXPECT_FLOAT_EQ(batch.at({1, 0, 1}), x.at({1, 1}));
}

TEST(HopFeatures, FlatViewForSign) {
  Rng rng(4);
  graph::Csr adj = path_graph(4).normalized_symmetric(0.f);
  Tensor x = Tensor::randn({4, 3}, rng);
  auto hf = core::HopFeatures::compute(adj, x, 2);
  Tensor flat = hf.flat();
  EXPECT_EQ(flat.shape(), (Shape{4, 9}));
  EXPECT_FLOAT_EQ(flat.at({2, 0}), x.at({2, 0}));
}

TEST(HopFeatures, ComputeConcatStacksAlongFeatures) {
  Rng rng(5);
  graph::Csr sym = path_graph(5).normalized_symmetric(0.f);
  graph::Csr row = path_graph(5).normalized_row();
  Tensor x = Tensor::randn({5, 2}, rng);
  auto combined = core::HopFeatures::compute_concat({&sym, &row}, x, 3);
  auto a = core::HopFeatures::compute(sym, x, 3);
  auto b = core::HopFeatures::compute(row, x, 3);
  EXPECT_EQ(combined.feature_dim(), 4);
  for (std::int64_t i = 0; i < 5; ++i) {
    for (int k = 0; k <= 3; ++k) {
      EXPECT_FLOAT_EQ(combined.stacked().at({i, k, 0}),
                      a.stacked().at({i, k, 0}));
      EXPECT_FLOAT_EQ(combined.stacked().at({i, k, 2}),
                      b.stacked().at({i, k, 0}));
    }
  }
}

TEST(GatedAttention, OutputShapeAndScores) {
  Rng rng(6);
  core::GatedAttentionLayer layer(8, rng);
  ag::Variable h = ag::constant(Tensor::randn({3, 5, 8}, rng));
  Tensor attn;
  ag::Variable out = layer.forward(h, &attn);
  EXPECT_EQ(out.shape(), (Shape{3, 5, 8}));
  EXPECT_EQ(attn.shape(), (Shape{3, 5, 5}));
  // Attention rows are distributions.
  for (std::int64_t b = 0; b < 3; ++b) {
    for (std::int64_t i = 0; i < 5; ++i) {
      float sum = 0;
      for (std::int64_t j = 0; j < 5; ++j) sum += attn.at({b, i, j});
      EXPECT_NEAR(sum, 1.f, 1e-4f);
    }
  }
  // ReLU output is non-negative.
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    EXPECT_GE(out.value().data()[i], 0.f);
  }
}

TEST(GatedAttention, GradCheckThroughLayer) {
  Rng rng(7);
  core::GatedAttentionLayer layer(4, rng);
  ag::Variable h(Tensor::randn({2, 3, 4}, rng), true);
  auto fn = [&layer](const std::vector<ag::Variable>& v) {
    return layer.forward(v[0]);
  };
  auto result = ag::grad_check(fn, {h}, 1e-2f, 5e-2f, 8e-2f);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Hoga, ForwardShapesAndAttentionDiagnostics) {
  Rng rng(8);
  core::Hoga model(
      core::HogaConfig{.in_dim = 5, .hidden = 16, .num_hops = 3,
                       .num_layers = 1, .out_dim = 4},
      rng);
  ag::Variable feats = ag::constant(Tensor::randn({7, 4, 5}, rng));
  Rng fwd(1);
  core::HogaAttention attn;
  ag::Variable logits = model.forward(feats, fwd, &attn);
  EXPECT_EQ(logits.shape(), (Shape{7, 4}));
  EXPECT_EQ(attn.readout_scores.shape(), (Shape{7, 3}));
  EXPECT_EQ(attn.self_attention.shape(), (Shape{7, 4, 4}));
  // Readout scores are distributions over hops 1..K.
  for (std::int64_t i = 0; i < 7; ++i) {
    float sum = 0;
    for (std::int64_t k = 0; k < 3; ++k) {
      sum += attn.readout_scores.at({i, k});
    }
    EXPECT_NEAR(sum, 1.f, 1e-4f);
  }
  // Wrong hop count is rejected.
  EXPECT_THROW(model.forward(ag::constant(Tensor::randn({2, 6, 5}, rng)), fwd),
               std::runtime_error);
}

TEST(Hoga, EndToEndGradCheck) {
  Rng rng(9);
  core::Hoga model(
      core::HogaConfig{.in_dim = 3, .hidden = 6, .num_hops = 2,
                       .num_layers = 1, .out_dim = 2},
      rng);
  ag::Variable feats(Tensor::randn({3, 3, 3}, rng), true);
  Rng fwd(0);
  auto fn = [&](const std::vector<ag::Variable>& v) {
    Rng local(0);
    return model.forward(v[0], local);
  };
  auto result = ag::grad_check(fn, {feats}, 1e-2f, 5e-2f, 8e-2f);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(Hoga, PredictMatchesBatchedForward) {
  Rng rng(10);
  core::Hoga model(
      core::HogaConfig{.in_dim = 4, .hidden = 8, .num_hops = 2,
                       .num_layers = 1, .out_dim = 3},
      rng);
  graph::Csr adj = path_graph(9).normalized_symmetric(0.f);
  Tensor x = Tensor::randn({9, 4}, rng);
  auto hf = core::HopFeatures::compute(adj, x, 2);
  // predict with small batch size must equal single-shot forward.
  Tensor small_batches = model.predict(hf, /*batch_size=*/2);
  Tensor one_shot = model.predict(hf, /*batch_size=*/64);
  EXPECT_TRUE(Tensor::allclose(small_batches, one_shot, 1e-4f));
}

TEST(Hoga, TrainingReducesLossOnSyntheticTask) {
  // Nodes labeled by which feature appears in their hop profile (class
  // signal lives in a distinct feature dimension AND hop position).
  Rng rng(11);
  const std::int64_t n = 128;
  Tensor feats({n, 4, 3});
  std::vector<int> labels(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 3);
    labels[i] = cls;
    feats.at({i, cls + 1, cls}) = 3.f;  // class-specific hop content
    for (std::int64_t k = 0; k < 4; ++k) {
      feats.at({i, k, 1}) +=
          static_cast<float>(rng.normal()) * 0.1f;  // noise
    }
  }
  core::Hoga model(
      core::HogaConfig{.in_dim = 3, .hidden = 12, .num_hops = 3,
                       .num_layers = 1, .out_dim = 3,
                       .input_norm = false},
      rng);
  optim::Adam opt(model.parameters(), 1e-2f);
  Rng fwd(2);
  float first = 0, last = 0;
  for (int epoch = 0; epoch < 200; ++epoch) {
    opt.zero_grad();
    ag::Variable logits = model.forward(ag::constant(feats), fwd);
    ag::Variable loss = ag::softmax_cross_entropy(logits, labels);
    loss.backward();
    opt.step();
    if (epoch == 0) first = loss.value()[0];
    last = loss.value()[0];
  }
  EXPECT_LT(last, first * 0.3f);
}

TEST(Gcn, ForwardShapesAndDepth) {
  Rng rng(12);
  models::Gcn gcn(models::GcnConfig{.in_dim = 4, .hidden = 8, .out_dim = 3,
                                    .num_layers = 3},
                  rng);
  auto adj = std::make_shared<const graph::Csr>(
      path_graph(6).normalized_symmetric(1.f));
  Rng fwd(0);
  ag::Variable out =
      gcn.forward(adj, ag::constant(Tensor::randn({6, 4}, rng)), fwd);
  EXPECT_EQ(out.shape(), (Shape{6, 3}));
  // Representation (pre-output) has hidden width.
  ag::Variable repr =
      gcn.forward_repr(adj, ag::constant(Tensor::randn({6, 4}, rng)), fwd);
  EXPECT_EQ(repr.shape(), (Shape{6, 8}));
}

TEST(Gcn, MessagePassingActuallyPropagates) {
  // On a path graph, a feature spike at node 0 must reach node L after L
  // layers but not beyond.
  Rng rng(13);
  models::Gcn gcn(models::GcnConfig{.in_dim = 1, .hidden = 4, .out_dim = 1,
                                    .num_layers = 2},
                  rng);
  auto adj = std::make_shared<const graph::Csr>(
      path_graph(6).normalized_symmetric(0.f));  // no self loops: pure steps
  Tensor x = Tensor::zeros({6, 1});
  x.at({0, 0}) = 1.f;
  Rng fwd(0);
  Tensor out = gcn.forward(adj, ag::constant(x), fwd).value();
  // Nodes beyond distance 2 see exactly zero.
  EXPECT_EQ(out.at({4, 0}), 0.f);
  EXPECT_EQ(out.at({5, 0}), 0.f);
}

TEST(GraphSage, ForwardAndSelfNeighborSeparation) {
  Rng rng(14);
  models::GraphSage sage(models::SageConfig{.in_dim = 3, .hidden = 6,
                                            .out_dim = 2, .num_layers = 2},
                         rng);
  auto adj = std::make_shared<const graph::Csr>(path_graph(5).normalized_row());
  Rng fwd(0);
  ag::Variable out =
      sage.forward(adj, ag::constant(Tensor::randn({5, 3}, rng)), fwd);
  EXPECT_EQ(out.shape(), (Shape{5, 2}));
  // 2 Linear modules per layer.
  EXPECT_EQ(sage.parameters().size(), 2u * (2u + 1u));  // self(w,b) + neigh(w)
}

TEST(Sign, FlatHopInputWidth) {
  Rng rng(15);
  models::Sign sign(models::SignConfig{.in_dim = 3, .hidden = 8, .out_dim = 4,
                                       .num_hops = 2, .mlp_layers = 2},
                    rng);
  Rng fwd(0);
  ag::Variable out =
      sign.forward(ag::constant(Tensor::randn({5, 9}, rng)), fwd);
  EXPECT_EQ(out.shape(), (Shape{5, 4}));
}

TEST(Saint, TrainingStepRunsAndReducesLoss) {
  Rng rng(16);
  graph::Csr adj = path_graph(40);
  Tensor x = Tensor::randn({40, 4}, rng);
  std::vector<int> labels(40);
  for (int i = 0; i < 40; ++i) labels[i] = i % 2;
  models::SaintConfig cfg{.gcn = {.in_dim = 4, .hidden = 8, .out_dim = 2,
                                  .num_layers = 2},
                          .walk_roots = 10,
                          .walk_length = 3,
                          .norm_estimation_runs = 5};
  models::Gcn gcn(cfg.gcn, rng);
  optim::Adam opt(gcn.parameters(), 1e-2f);
  models::SaintTrainer trainer(cfg, adj, rng);
  float first = 0, sum_late = 0;
  for (int step = 0; step < 60; ++step) {
    const float loss = trainer.step(gcn, opt, x, labels, rng);
    if (step == 0) first = loss;
    if (step >= 50) sum_late += loss;
  }
  EXPECT_LT(sum_late / 10.f, first * 1.5f);  // does not diverge
}

}  // namespace
}  // namespace hoga
