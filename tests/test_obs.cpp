// Observability subsystem tests (DESIGN.md §10): metrics registry semantics
// and snapshot formats, fake/steady clocks, span nesting (implicit TLS and
// explicit cross-thread parents), the bounded trace buffer, run-ledger
// round trips and crash residue, and the cross-layer wiring — serve span
// trees byte-identical under FakeClock + seeded faults, trainer
// recovery events reconstructible from the ledger, fig5 scaling points
// rebuilt bit-exactly from ledger lines, store negative-lookup and
// shard-cap instrumentation, and the thread-pool queue-latency sink.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "autograd/ops.hpp"
#include "core/hop_features.hpp"
#include "data/reasoning_dataset.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "reasoning/features.hpp"
#include "serve/serve.hpp"
#include "store/feature_store.hpp"
#include "train/parallel.hpp"
#include "train/train_state.hpp"
#include "util/io.hpp"
#include "util/threadpool.hpp"

namespace hoga {
namespace {

// -- Metrics registry -------------------------------------------------------

TEST(ObsMetrics, CounterRegistersCountsAndResets) {
  obs::MetricsRegistry reg;
  obs::Counter a = reg.counter("x.a");
  a.inc();
  a.inc(4);
  EXPECT_EQ(a.value(), 5);
  // Same name resolves to the same cell.
  obs::Counter a2 = reg.counter("x.a");
  a2.inc();
  EXPECT_EQ(a.value(), 6);
  a.reset();
  EXPECT_EQ(a2.value(), 0);
  // Default-constructed handles no-op.
  obs::Counter null;
  null.inc(100);
  EXPECT_EQ(null.value(), 0);
}

TEST(ObsMetrics, HistogramBucketsAndExactSnapshots) {
  obs::MetricsRegistry reg;
  obs::Counter c = reg.counter("obs.test");
  c.inc(2);
  obs::Histogram h = reg.histogram("h", {1.0, 5.0, 10.0});
  for (double v : {0.5, 1.0, 3.0, 10.0, 11.0}) h.record(v);
  // "le" semantics: a value equal to a bound lands in that bucket.
  EXPECT_EQ(h.bucket_count(0), 2);  // 0.5, 1.0
  EXPECT_EQ(h.bucket_count(1), 1);  // 3.0
  EXPECT_EQ(h.bucket_count(2), 1);  // 10.0
  EXPECT_EQ(h.bucket_count(3), 1);  // 11.0 -> overflow
  EXPECT_EQ(h.bucket_count(4), 0);  // out of range
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 25.5);

  EXPECT_EQ(reg.text_snapshot(),
            "counter obs.test 2\n"
            "histogram h count=5 sum=25.5 p50=3 p95=10 p99=10 "
            "le1=2 le5=1 le10=1 inf=1\n");
  EXPECT_EQ(reg.json_snapshot(),
            "{\"counters\":{\"obs.test\":2},\"histograms\":{\"h\":"
            "{\"bounds\":[1,5,10],\"bucket_counts\":[2,1,1,1],"
            "\"count\":5,\"sum\":25.5,\"p50\":3,\"p95\":10,\"p99\":10}}}");

  reg.reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.bucket_count(0), 0);
}

TEST(ObsMetrics, HistogramQuantileInterpolatesWithinBuckets) {
  obs::MetricsRegistry reg;
  obs::Histogram h = reg.histogram("q", {10.0, 20.0, 40.0});
  // Empty and null-handle histograms estimate 0.
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(obs::Histogram().quantile(0.5), 0.0);

  for (int i = 0; i < 10; ++i) h.record(5.0);   // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.record(15.0);  // bucket (10, 20]
  // Rank 10 of 20 lands exactly on the first bucket's upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 10.0);
  // Rank 15 is halfway through the second bucket: midpoint of (10, 20].
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);
  // q is clamped to [0, 1].
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);

  // Ranks in the overflow bucket clamp to the last finite bound.
  for (int i = 0; i < 1000; ++i) h.record(1e6);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 40.0);
}

TEST(ObsMetrics, SnapshotIsSortedByName) {
  obs::MetricsRegistry reg;
  reg.counter("zeta").inc();
  reg.counter("alpha").inc();
  reg.counter("mid").inc();
  EXPECT_EQ(reg.text_snapshot(),
            "counter alpha 1\ncounter mid 1\ncounter zeta 1\n");
}

TEST(ObsMetrics, DisabledRegistryHandsOutNoopsAndEmptySnapshots) {
  obs::MetricsRegistry reg(/*enabled=*/false);
  EXPECT_FALSE(reg.enabled());
  obs::Counter c = reg.counter("a");
  obs::Histogram h = reg.histogram("h", {1.0});
  c.inc(7);
  h.record(0.5);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(reg.text_snapshot(), "");
  EXPECT_EQ(reg.json_snapshot(), "{\"counters\":{},\"histograms\":{}}");
}

TEST(ObsMetrics, HistogramBoundsAreValidated) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.histogram("bad", {}), std::runtime_error);
  EXPECT_THROW(reg.histogram("bad", {2.0, 1.0}), std::runtime_error);
  EXPECT_THROW(reg.histogram("bad", {1.0, 1.0}), std::runtime_error);
  obs::Histogram h = reg.histogram("ok", {1.0, 2.0});
  (void)h;
  // Re-registration with identical bounds shares the cell...
  obs::Histogram h2 = reg.histogram("ok", {1.0, 2.0});
  h2.record(0.5);
  EXPECT_EQ(h.count(), 1);
  // ...but different bounds are a wiring bug.
  EXPECT_THROW(reg.histogram("ok", {1.0, 3.0}), std::runtime_error);
}

// -- Clocks -----------------------------------------------------------------

TEST(ObsClock, FakeClockIsDeterministicAndAdvances) {
  obs::FakeClock a(100, 10), b(100, 10);
  EXPECT_EQ(a.now_ns(), 100u);
  EXPECT_EQ(a.now_ns(), 110u);
  EXPECT_EQ(a.now_ns(), 120u);
  a.advance(5);
  EXPECT_EQ(a.now_ns(), 135u);
  for (std::uint64_t want : {100u, 110u, 120u}) EXPECT_EQ(b.now_ns(), want);
}

TEST(ObsClock, FakeClockJitterIsSeededAndBounded) {
  obs::FakeClock a(0, 1000, /*jitter_seed=*/42, /*jitter_ns=*/500);
  obs::FakeClock b(0, 1000, /*jitter_seed=*/42, /*jitter_ns=*/500);
  std::uint64_t prev = 0;
  bool jittered = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t ta = a.now_ns();
    EXPECT_EQ(ta, b.now_ns());  // same seed, same sequence
    if (i > 0) {
      const std::uint64_t step = ta - prev;
      EXPECT_GE(step, 1000u);
      EXPECT_LE(step, 1500u);
      if (step != 1000u) jittered = true;
    }
    prev = ta;
  }
  EXPECT_TRUE(jittered);  // jitter_ns > 0 actually perturbs the steps
}

TEST(ObsClock, SteadyClockIsMonotone) {
  obs::SteadyClock& clk = obs::SteadyClock::instance();
  const std::uint64_t t1 = clk.now_ns();
  const std::uint64_t t2 = clk.now_ns();
  EXPECT_LE(t1, t2);
}

// -- Tracer -----------------------------------------------------------------

TEST(ObsTrace, ImplicitNestingAttrsAndEvents) {
  obs::FakeClock clk;
  obs::Tracer tr(&clk);
  {
    obs::Span parent = tr.span("parent");
    parent.set_attr("k", "v");
    {
      obs::Span child = tr.span("child");
      tr.event("mark");  // lands on the innermost open span
    }
  }
  const auto spans = tr.finished();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by start time: parent opened first.
  EXPECT_EQ(spans[0].name, "parent");
  EXPECT_EQ(spans[0].parent_id, 0u);
  ASSERT_EQ(spans[0].attrs.size(), 1u);
  EXPECT_EQ(spans[0].attrs[0].first, "k");
  EXPECT_EQ(spans[0].attrs[0].second, "v");
  EXPECT_EQ(spans[1].name, "child");
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  ASSERT_EQ(spans[1].events.size(), 1u);
  EXPECT_EQ(spans[1].events[0].name, "mark");
  // FakeClock(0, 1000): parent start 0, child start 1000, event 2000,
  // child end 3000, parent end 4000.
  EXPECT_EQ(spans[0].start_ns, 0u);
  EXPECT_EQ(spans[1].start_ns, 1000u);
  EXPECT_EQ(spans[1].events[0].ts_ns, 2000u);
  EXPECT_EQ(spans[1].end_ns, 3000u);
  EXPECT_EQ(spans[0].end_ns, 4000u);
}

TEST(ObsTrace, ExplicitParentBridgesThreads) {
  obs::FakeClock clk;
  obs::Tracer tr(&clk);
  obs::Span root = tr.span("root");
  const std::uint64_t root_id = root.id();
  std::thread worker([&] {
    // TLS on this thread has no open span; the explicit parent links the
    // cross-thread child, and it becomes the implicit parent locally.
    obs::Span w = tr.span("worker", root_id);
    obs::Span inner = tr.span("inner");
  });
  worker.join();
  root.end();
  const auto spans = tr.finished();
  ASSERT_EQ(spans.size(), 3u);
  std::uint64_t worker_id = 0;
  for (const auto& s : spans) {
    if (s.name == "worker") {
      worker_id = s.span_id;
      EXPECT_EQ(s.parent_id, root_id);
    }
  }
  ASSERT_NE(worker_id, 0u);
  for (const auto& s : spans) {
    if (s.name == "inner") {
      EXPECT_EQ(s.parent_id, worker_id);
    }
    if (s.name == "root") {
      EXPECT_EQ(s.parent_id, 0u);
    }
  }
}

TEST(ObsTrace, MoveAndExplicitEndAreSafe) {
  obs::FakeClock clk;
  obs::Tracer tr(&clk);
  obs::Span a = tr.span("a");
  obs::Span b = std::move(a);  // the TLS frame must follow the move
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  tr.event("after-move");  // must land on the moved-to span, not crash
  b.end();
  b.end();  // idempotent
  const auto spans = tr.finished();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].events.size(), 1u);
  EXPECT_EQ(spans[0].events[0].name, "after-move");
  // Event with no open span is a silent no-op.
  tr.event("orphan");
  EXPECT_EQ(tr.finished()[0].events.size(), 1u);
}

TEST(ObsTrace, BoundedBufferDropsOldest) {
  obs::FakeClock clk;
  obs::Tracer tr(&clk, /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    std::string name("s");
    name += std::to_string(i);
    obs::Span s = tr.span(name);
  }
  EXPECT_EQ(tr.size(), 3u);
  EXPECT_EQ(tr.dropped(), 2);
  const auto spans = tr.finished();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "s2");  // s0, s1 were dropped
  EXPECT_EQ(spans[2].name, "s4");
  tr.clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0);
}

TEST(ObsTrace, SamplingKeepsDeterministicSubsetAndAllErrorSpans) {
  const auto kept_names = [](std::uint64_t seed) {
    obs::FakeClock clk;
    obs::Tracer tr(&clk);
    tr.set_sampling({.keep_one_in = 4, .seed = seed});
    for (int i = 0; i < 40; ++i) {
      obs::Span s = tr.span("s" + std::to_string(i));
      if (i % 10 == 3) s.set_error("boom " + std::to_string(i));
    }
    std::vector<std::string> names;
    for (const auto& rec : tr.finished()) names.push_back(rec.name);
    return names;
  };
  const auto kept = kept_names(7);
  // Deterministic: the identical scripted run keeps the identical subset.
  EXPECT_EQ(kept, kept_names(7));
  // 1-in-4 over 40 spans: a real subset survives, nowhere near all.
  EXPECT_GT(kept.size(), 2u);
  EXPECT_LT(kept.size(), 30u);
  // Error spans are exempt from sampling — every one survived.
  for (const char* err : {"s3", "s13", "s23", "s33"}) {
    EXPECT_NE(std::find(kept.begin(), kept.end(), err), kept.end()) << err;
  }
  // A different seed keeps a different subset (of non-error spans).
  EXPECT_NE(kept, kept_names(8));
}

TEST(ObsTrace, SamplingCountersTallyLocallyAndMirrorToAmbient) {
  obs::MetricsRegistry reg;
  obs::ScopedObservability scoped({.metrics = &reg});
  obs::FakeClock clk;
  obs::Tracer tr(&clk);
  // Sampling off: no counters move, everything is kept.
  {
    obs::Span s = tr.span("unsampled");
  }
  EXPECT_EQ(tr.sampled(), 0);
  EXPECT_EQ(tr.skipped(), 0);
  EXPECT_EQ(reg.counter("trace.sampled").value(), 0);

  tr.set_sampling({.keep_one_in = 3, .seed = 1});
  for (int i = 0; i < 30; ++i) {
    obs::Span s = tr.span("x");
  }
  EXPECT_EQ(tr.sampled() + tr.skipped(), 30);
  EXPECT_GT(tr.sampled(), 0);
  EXPECT_GT(tr.skipped(), 0);
  EXPECT_EQ(reg.counter("trace.sampled").value(), tr.sampled());
  EXPECT_EQ(reg.counter("trace.skipped").value(), tr.skipped());
  // The buffer holds exactly the sampled spans (plus the pre-sampling one).
  EXPECT_EQ(tr.size(), static_cast<std::size_t>(tr.sampled()) + 1u);
  // An error span is always kept and counted as sampled.
  const long long sampled_before = tr.sampled();
  {
    obs::Span s = tr.span("err");
    s.set_error("exploded");
  }
  EXPECT_EQ(tr.sampled(), sampled_before + 1);
  const auto spans = tr.finished();
  EXPECT_EQ(spans.back().name, "err");
  EXPECT_TRUE(spans.back().error);
  ASSERT_FALSE(spans.back().attrs.empty());
  EXPECT_EQ(spans.back().attrs[0].first, "error");
  EXPECT_EQ(spans.back().attrs[0].second, "exploded");

  tr.clear();
  EXPECT_EQ(tr.sampled(), 0);
  EXPECT_EQ(tr.skipped(), 0);
}

TEST(ObsTrace, ExportJsonlExactFormatAndDeterminism) {
  const auto run = [] {
    obs::FakeClock clk;
    obs::Tracer tr(&clk);
    {
      obs::Span s = tr.span("solo");
    }
    {
      obs::Span p = tr.span("p");
      p.set_attr("outcome", "ok");
      p.add_event("tick");
    }
    return tr.export_jsonl();
  };
  const std::string a = run();
  EXPECT_EQ(a, run());  // byte-identical across identical scripted runs
  EXPECT_EQ(a,
            "{\"span_id\":1,\"parent_id\":0,\"name\":\"solo\","
            "\"start_ns\":0,\"end_ns\":1000}\n"
            "{\"span_id\":2,\"parent_id\":0,\"name\":\"p\","
            "\"start_ns\":2000,\"end_ns\":4000,"
            "\"attrs\":{\"outcome\":\"ok\"},\"events\":{\"tick\":3000}}\n");
}

// -- Run ledger -------------------------------------------------------------

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) : path("/tmp/hoga_obs_" + name) {
    std::filesystem::remove(path);
  }
  ~TempFile() { std::filesystem::remove(path); }
};

TEST(ObsLedger, RoundTripPreservesTypesAndDoubleBits) {
  TempFile f("roundtrip.jsonl");
  obs::FakeClock clk(0, 7);
  {
    obs::RunLedger led(f.path, &clk);
    led.event("train.epoch", {{"epoch", 3}, {"mean_loss", 0.1}});
    led.event("note", {{"msg", "hello \"quoted\"\nline"},
                       {"flag", true},
                       {"tiny", 1.0000000000000002e-17}});
    EXPECT_EQ(led.events_written(), 2);
    led.close();
    led.close();  // idempotent
    led.event("late", {});  // no-op after close
    EXPECT_EQ(led.events_written(), 2);
  }
  const auto r = obs::RunLedger::read(f.path);
  EXPECT_TRUE(r.footer_present);
  EXPECT_TRUE(r.footer_valid);
  EXPECT_EQ(r.skipped_lines, 0u);
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.events[0].seq, 0);
  EXPECT_EQ(r.events[0].ts_ns, 0u);
  EXPECT_EQ(r.events[0].type, "train.epoch");
  EXPECT_EQ(r.events[0].int_field("epoch"), 3);
  EXPECT_EQ(r.events[0].double_field("mean_loss"), 0.1);  // bit-exact
  EXPECT_EQ(r.events[1].seq, 1);
  EXPECT_EQ(r.events[1].ts_ns, 7u);
  EXPECT_EQ(r.events[1].string_field("msg"), "hello \"quoted\"\nline");
  EXPECT_EQ(r.events[1].double_field("tiny"), 1.0000000000000002e-17);
  const auto* flag = r.events[1].find("flag");
  ASSERT_NE(flag, nullptr);
  EXPECT_TRUE(std::get<bool>(*flag));
  // Typed accessors reject absent or mistyped fields.
  EXPECT_THROW(r.events[0].int_field("nope"), std::runtime_error);
  EXPECT_THROW(r.events[1].int_field("msg"), std::runtime_error);
  EXPECT_THROW(r.events[1].string_field("tiny"), std::runtime_error);
}

TEST(ObsLedger, CrashResidueWithoutFooterIsStillReadable) {
  TempFile f("crash.jsonl");
  obs::FakeClock clk;
  {
    obs::RunLedger led(f.path, &clk);
    for (int i = 0; i < 3; ++i) led.event("e", {{"x", i}});
    led.close();
  }
  // Simulate a crash: drop the footer and tear the last event line in half.
  std::string bytes = util::read_file(f.path);
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    lines.push_back(bytes.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);  // 3 events + footer
  const std::string torn =
      lines[0] + "\n" + lines[1] + "\n" +
      lines[2].substr(0, lines[2].size() / 2);  // no trailing newline
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << torn;
  }
  const auto r = obs::RunLedger::read(f.path);
  EXPECT_FALSE(r.footer_present);
  EXPECT_FALSE(r.footer_valid);
  EXPECT_EQ(r.skipped_lines, 1u);  // the torn tail
  ASSERT_EQ(r.events.size(), 2u);  // complete lines survive
  EXPECT_EQ(r.events[1].int_field("x"), 1);
}

TEST(ObsLedger, CorruptedLineFailsTheFooterCrc) {
  TempFile f("corrupt.jsonl");
  obs::FakeClock clk;
  {
    obs::RunLedger led(f.path, &clk);
    for (int i = 0; i < 3; ++i) led.event("e", {{"x", i}});
    led.close();
  }
  // Flip one digit in the second event: the line still parses, but the
  // bytes no longer match the footer CRC.
  std::string bytes = util::read_file(f.path);
  const std::size_t at = bytes.find("\"x\":1");
  ASSERT_NE(at, std::string::npos);
  bytes[at + 4] = '9';
  {
    std::ofstream out(f.path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  const auto r = obs::RunLedger::read(f.path);
  EXPECT_TRUE(r.footer_present);
  EXPECT_FALSE(r.footer_valid);  // tampering detected
  ASSERT_EQ(r.events.size(), 3u);
  EXPECT_EQ(r.events[1].int_field("x"), 9);  // data still delivered
}

// -- Ambient context --------------------------------------------------------

TEST(ObsAmbient, ScopedInstallNestsAndHelpersNoopWithoutContext) {
  EXPECT_EQ(obs::ambient().metrics, nullptr);
  // Helpers must be safe with nothing installed.
  obs::count("nothing");
  obs::trace_event("nothing");
  obs::ledger_event("nothing", {{"x", 1}});
  {
    obs::Span inert = obs::ambient_span("nothing");
    EXPECT_FALSE(inert.active());
  }

  obs::MetricsRegistry reg;
  obs::FakeClock clk;
  obs::Tracer tr(&clk);
  {
    obs::Observability ctx;
    ctx.metrics = &reg;
    ctx.tracer = &tr;
    obs::ScopedObservability scope(ctx);
    EXPECT_EQ(obs::ambient().metrics, &reg);
    obs::count("hits", 2);
    obs::count("hits");
    {
      obs::Span s = obs::ambient_span("region");
      EXPECT_TRUE(s.active());
      obs::trace_event("inside");
    }
    {
      obs::Observability inner;  // nested scope overrides, then restores
      obs::ScopedObservability scope2(inner);
      EXPECT_EQ(obs::ambient().metrics, nullptr);
    }
    EXPECT_EQ(obs::ambient().metrics, &reg);
  }
  EXPECT_EQ(obs::ambient().metrics, nullptr);
  EXPECT_EQ(reg.counter("hits").value(), 3);
  const auto spans = tr.finished();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "region");
  ASSERT_EQ(spans[0].events.size(), 1u);
  EXPECT_EQ(spans[0].events[0].name, "inside");
}

// -- Thread-pool queue-latency sink -----------------------------------------

TEST(ObsPool, QueueLatencySinkRecordsEveryTask) {
  obs::MetricsRegistry reg;
  ThreadPool pool(2);
  obs::attach_queue_latency(pool, reg, "pool.queue_wait_ms");
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([] {}));
  }
  for (auto& f : futures) f.get();
  obs::Histogram h = reg.histogram("pool.queue_wait_ms",
                                   obs::latency_ms_bounds());
  EXPECT_EQ(h.count(), 8);
  EXPECT_GE(h.sum(), 0.0);
}

// -- Serving runtime wiring -------------------------------------------------

core::HogaConfig small_config() {
  return {.in_dim = 4, .hidden = 8, .num_hops = 3, .num_layers = 1,
          .out_dim = 3};
}

Tensor random_batch(std::int64_t nodes, const core::HogaConfig& cfg,
                    std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::randn({nodes, cfg.num_hops + 1, cfg.in_dim}, rng);
}

TEST(ObsServe, RequestProducesSpansMetricsAndLedgerEvent) {
  TempFile f("serve_one.jsonl");
  Rng rng(3);
  const auto mcfg = small_config();
  core::Hoga model(mcfg, rng);
  obs::FakeClock clk;
  obs::Tracer tracer(&clk);
  obs::MetricsRegistry registry;
  obs::RunLedger ledger(f.path, &clk);
  serve::ServeConfig scfg{.workers = 1};
  scfg.metrics = &registry;
  scfg.tracer = &tracer;
  scfg.ledger = &ledger;
  serve::InferenceService svc(model, scfg);

  const serve::Response r = svc.infer({.hop_batch = random_batch(5, mcfg, 9)});
  ASSERT_EQ(r.outcome, serve::Outcome::kServed) << r.error;

  // Counters live in the shared registry under serve.* names, and stats()
  // reconstructs the legacy struct from them.
  EXPECT_EQ(registry.counter("serve.submitted").value(), 1);
  EXPECT_EQ(registry.counter("serve.served").value(), 1);
  EXPECT_EQ(svc.stats().served, 1);
  EXPECT_NE(registry.text_snapshot().find("counter serve.served 1\n"),
            std::string::npos);
  EXPECT_NE(registry.text_snapshot().find("histogram serve.latency_ms"),
            std::string::npos);

  // Span tree: the request span is the root; validate/admission are its
  // children on the caller thread, and the forward span is its child via
  // the explicit cross-thread parent.
  const auto spans = tracer.finished();
  std::uint64_t request_id = 0;
  for (const auto& s : spans) {
    if (s.name == "serve.request") {
      request_id = s.span_id;
      ASSERT_EQ(s.attrs.size(), 1u);
      EXPECT_EQ(s.attrs[0].first, "outcome");
      EXPECT_EQ(s.attrs[0].second, "served");
    }
  }
  ASSERT_NE(request_id, 0u);
  std::set<std::string> children;
  for (const auto& s : spans) {
    if (s.parent_id == request_id) children.insert(s.name);
  }
  EXPECT_TRUE(children.count("serve.validate"));
  EXPECT_TRUE(children.count("serve.admission"));
  EXPECT_TRUE(children.count("serve.forward"));

  ledger.close();
  const auto led = obs::RunLedger::read(f.path);
  EXPECT_TRUE(led.footer_valid);
  ASSERT_EQ(led.events.size(), 1u);
  EXPECT_EQ(led.events[0].type, "serve.request");
  EXPECT_EQ(led.events[0].string_field("outcome"), "served");
  EXPECT_GE(led.events[0].double_field("latency_ms"), 0.0);
}

// The satellite determinism contract: under a FakeClock and a seeded fault
// schedule, a scripted serve run produces byte-identical span JSONL,
// metrics snapshots, and ledger files across runs.
struct ScriptedArtifacts {
  std::string spans, metrics, ledger;
};

ScriptedArtifacts scripted_serve_run(const std::string& ledger_path) {
  Rng mrng(3);
  const auto mcfg = small_config();
  core::Hoga model(mcfg, mrng);
  obs::FakeClock clock(0, 1000, /*jitter_seed=*/9, /*jitter_ns=*/300);
  obs::Tracer tracer(&clock);
  obs::MetricsRegistry registry;
  obs::RunLedger ledger(ledger_path, &clock);
  // Ambient context too, so the fault hooks' counters and span events are
  // part of the compared bytes.
  obs::Observability ctx;
  ctx.metrics = &registry;
  ctx.tracer = &tracer;
  obs::ScopedObservability obs_scope(ctx);

  serve::ServeConfig scfg{.workers = 1, .queue_capacity = 8};
  scfg.metrics = &registry;
  scfg.tracer = &tracer;
  scfg.ledger = &ledger;
  serve::InferenceService svc(model, scfg);

  fault::Injector inj(11);
  inj.poison_request(3);  // the 4th submitted request fails validation
  fault::ScopedInjector scope(inj);

  const std::vector<Tensor> batches = {random_batch(6, mcfg, 21),
                                       random_batch(9, mcfg, 22)};
  for (int i = 0; i < 7; ++i) {
    svc.infer({.hop_batch = batches[static_cast<std::size_t>(i % 2)]});
  }

  ScriptedArtifacts out;
  out.spans = tracer.export_jsonl();
  out.metrics = registry.text_snapshot();
  ledger.close();
  out.ledger = util::read_file(ledger_path);
  return out;
}

TEST(ObsServe, ScriptedRunIsByteIdenticalUnderFakeClockAndFaults) {
  TempFile fa("determinism_a.jsonl");
  TempFile fb("determinism_b.jsonl");
  const ScriptedArtifacts a = scripted_serve_run(fa.path);
  const ScriptedArtifacts b = scripted_serve_run(fb.path);

  EXPECT_FALSE(a.spans.empty());
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_EQ(a.ledger, b.ledger);

  // Sanity: the schedule actually exercised what it scripted.
  EXPECT_NE(a.metrics.find("counter serve.served 6\n"), std::string::npos);
  EXPECT_NE(a.metrics.find("counter serve.rejected_invalid 1\n"),
            std::string::npos);
  EXPECT_NE(a.metrics.find("counter fault.poisoned_request 1\n"),
            std::string::npos);
}

// -- Trainer wiring ---------------------------------------------------------

TEST(ObsTrain, EpochLoopEmitsSpansAndLedgerEvents) {
  TempFile ledger_file("train.jsonl");
  TempFile ckpt_file("train.ckpt");
  obs::FakeClock clk;
  obs::Tracer tracer(&clk);
  obs::MetricsRegistry registry;

  Rng mrng(1);
  core::Hoga model(core::HogaConfig{.in_dim = 4, .hidden = 4, .num_hops = 2,
                                    .num_layers = 1, .out_dim = 2},
                   mrng);
  optim::Adam opt(model.parameters(), 1e-3f);
  Rng rng(2);

  fault::Injector inj;
  inj.fail_checkpoint_write(0);  // first checkpoint write attempt errors
  fault::ScopedInjector fault_scope(inj);

  train::CheckpointConfig ckpt;
  ckpt.path = ckpt_file.path;
  ckpt.every = 1;
  train::LoopStats stats;
  int calls = 0;
  std::vector<float> losses;
  {
    obs::RunLedger ledger(ledger_file.path, &clk);
    obs::Observability ctx;
    ctx.metrics = &registry;
    ctx.tracer = &tracer;
    ctx.ledger = &ledger;
    obs::ScopedObservability scope(ctx);
    losses = train::run_fault_tolerant_epochs(
        model, opt, rng, /*epochs=*/2, ckpt,
        [&](bool* ok) {
          ++calls;
          if (calls == 1) {
            *ok = false;  // poisoned first epoch forces a rollback
            return 0.0;
          }
          return 1.0 / calls;
        },
        &stats);
  }
  ASSERT_EQ(losses.size(), 2u);
  EXPECT_EQ(stats.rollbacks, 1);
  EXPECT_EQ(stats.checkpoint_retries, 1);  // the injected write error

  const auto led = obs::RunLedger::read(ledger_file.path);
  EXPECT_TRUE(led.footer_valid);
  std::vector<const obs::LedgerEvent*> epochs, checkpoints, rollbacks;
  for (const auto& e : led.events) {
    if (e.type == "train.epoch") epochs.push_back(&e);
    if (e.type == "train.checkpoint") checkpoints.push_back(&e);
    if (e.type == "train.rollback") rollbacks.push_back(&e);
  }
  ASSERT_EQ(rollbacks.size(), 1u);
  EXPECT_EQ(rollbacks[0]->int_field("epoch"), 0);
  EXPECT_EQ(rollbacks[0]->int_field("rollbacks"), 1);
  EXPECT_GT(rollbacks[0]->double_field("lr"), 0.0);
  ASSERT_EQ(checkpoints.size(), 2u);
  EXPECT_EQ(checkpoints[0]->int_field("epoch"), 1);
  EXPECT_EQ(checkpoints[0]->int_field("retries"), 1);
  EXPECT_EQ(checkpoints[1]->int_field("retries"), 0);
  ASSERT_EQ(epochs.size(), 2u);
  // The ledger's shortest-round-trip doubles reproduce the loss history
  // exactly (losses are stored as float; the ledger carried the double).
  EXPECT_EQ(static_cast<float>(epochs[0]->double_field("mean_loss")),
            losses[0]);
  EXPECT_EQ(static_cast<float>(epochs[1]->double_field("mean_loss")),
            losses[1]);

  // Span tree: recovery and checkpoint spans nest under epoch spans, and
  // the injected checkpoint-write fault marked the open checkpoint span.
  std::set<std::uint64_t> epoch_ids;
  for (const auto& s : tracer.finished()) {
    if (s.name == "train.epoch") epoch_ids.insert(s.span_id);
  }
  EXPECT_EQ(epoch_ids.size(), 3u);  // rolled-back epoch + two that landed
  bool saw_recovery = false, saw_ckpt_fault = false;
  for (const auto& s : tracer.finished()) {
    if (s.name == "train.recovery") {
      saw_recovery = true;
      EXPECT_TRUE(epoch_ids.count(s.parent_id));
    }
    if (s.name == "train.checkpoint") {
      EXPECT_TRUE(epoch_ids.count(s.parent_id));
      for (const auto& ev : s.events) {
        if (ev.name == "fault.checkpoint_write") saw_ckpt_fault = true;
      }
    }
  }
  EXPECT_TRUE(saw_recovery);
  EXPECT_TRUE(saw_ckpt_fault);
  EXPECT_EQ(registry.counter("fault.checkpoint_write").value(), 1);

  // Resume from the checkpoint: one more epoch, and the resume itself is a
  // span plus a ledger event.
  TempFile resume_ledger("train_resume.jsonl");
  tracer.clear();
  {
    obs::RunLedger ledger(resume_ledger.path, &clk);
    obs::Observability ctx;
    ctx.tracer = &tracer;
    ctx.ledger = &ledger;
    obs::ScopedObservability scope(ctx);
    train::CheckpointConfig resume_cfg;
    resume_cfg.resume_from = ckpt_file.path;
    train::run_fault_tolerant_epochs(
        model, opt, rng, /*epochs=*/3, resume_cfg,
        [&](bool*) { return 0.125; }, nullptr);
  }
  const auto led2 = obs::RunLedger::read(resume_ledger.path);
  ASSERT_FALSE(led2.events.empty());
  EXPECT_EQ(led2.events[0].type, "train.resume");
  EXPECT_EQ(led2.events[0].int_field("epoch"), 2);
  bool saw_resume_span = false;
  for (const auto& s : tracer.finished()) {
    if (s.name == "train.resume") saw_resume_span = true;
  }
  EXPECT_TRUE(saw_resume_span);
}

// Satellite: the fig5 --fault output must be reconstructible from the run
// ledger alone — every ScalingPoint field round-trips bit-exactly through
// scaling.point events, and worker failures appear as their own events.
TEST(ObsTrain, ScalingPointsReconstructBitExactlyFromLedger) {
  TempFile f("fig5.jsonl");
  const auto g = data::make_reasoning_graph("csa", 4, /*mapped=*/false);
  const auto hops = core::HopFeatures::compute(*g.adj_hop, g.features, 3);
  Rng rng(7);
  core::Hoga model(core::HogaConfig{.in_dim = reasoning::kNodeFeatureDim,
                                    .hidden = 12, .num_hops = 3,
                                    .num_layers = 1, .out_dim = 4},
                   rng);
  train::NodeTrainConfig tcfg;
  tcfg.epochs = 1;
  tcfg.batch_size = 8;
  train::ClusterConfig ccfg;
  ccfg.worker_counts = {1, 2};
  ccfg.epochs_to_time = 1;

  fault::Injector inj;
  inj.kill_worker(/*epoch=*/0, /*worker=*/1);  // dies in the 2-worker run
  fault::ScopedInjector fault_scope(inj);

  std::vector<train::ScalingPoint> points;
  {
    obs::RunLedger ledger(f.path);
    obs::Observability ctx;
    ctx.ledger = &ledger;
    obs::ScopedObservability scope(ctx);
    points = train::simulate_hoga_scaling(model, hops, g.labels, tcfg, ccfg);
  }
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[1].worker_failures, 1);

  const auto led = obs::RunLedger::read(f.path);
  EXPECT_TRUE(led.footer_valid);
  std::vector<train::ScalingPoint> rebuilt;
  long long failure_events = 0;
  for (const auto& e : led.events) {
    if (e.type == "scaling.worker_failure") {
      ++failure_events;
      EXPECT_EQ(e.int_field("workers"), 2);
      EXPECT_EQ(e.int_field("worker"), 1);
      continue;
    }
    ASSERT_EQ(e.type, "scaling.point");
    train::ScalingPoint p;
    p.workers = static_cast<int>(e.int_field("workers"));
    p.worker_failures = static_cast<int>(e.int_field("worker_failures"));
    p.compute_seconds = e.double_field("compute_seconds");
    p.allreduce_seconds = e.double_field("allreduce_seconds");
    p.recovery_seconds = e.double_field("recovery_seconds");
    p.epoch_seconds = e.double_field("epoch_seconds");
    p.speedup = e.double_field("speedup");
    p.efficiency = e.double_field("efficiency");
    rebuilt.push_back(p);
  }
  EXPECT_EQ(failure_events, 1);
  ASSERT_EQ(rebuilt.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(rebuilt[i].workers, points[i].workers);
    EXPECT_EQ(rebuilt[i].worker_failures, points[i].worker_failures);
    // Bit-exact: the ledger writes shortest-round-trip doubles.
    EXPECT_EQ(rebuilt[i].compute_seconds, points[i].compute_seconds);
    EXPECT_EQ(rebuilt[i].allreduce_seconds, points[i].allreduce_seconds);
    EXPECT_EQ(rebuilt[i].recovery_seconds, points[i].recovery_seconds);
    EXPECT_EQ(rebuilt[i].epoch_seconds, points[i].epoch_seconds);
    EXPECT_EQ(rebuilt[i].speedup, points[i].speedup);
    EXPECT_EQ(rebuilt[i].efficiency, points[i].efficiency);
  }
}

// -- Feature-store wiring ---------------------------------------------------

core::HopFeatures random_hops(std::int64_t n, int k, std::int64_t d,
                              std::uint64_t seed) {
  Rng rng(seed);
  return core::HopFeatures::from_stacked(Tensor::randn({n, k + 1, d}, rng),
                                         k);
}

struct ShardDir {
  std::string path;
  explicit ShardDir(const std::string& name)
      : path("/tmp/hoga_obs_store_" + name) {
    std::filesystem::remove_all(path);
  }
  ~ShardDir() { std::filesystem::remove_all(path); }
};

TEST(ObsStore, NegativeLookupSkipsDiskAndPutInvalidates) {
  ShardDir dir("negative");
  obs::MetricsRegistry registry;
  store::StoreConfig cfg;
  cfg.directory = dir.path;
  cfg.memory_budget_bytes = 0;  // force every positive lookup to disk
  cfg.metrics = &registry;
  store::FeatureStore fs(cfg);
  const store::FeatureKey key{0xABCDEFull, 2};
  const auto hops = random_hops(6, 2, 3, 1);

  // First miss probes the filesystem and memoizes the absence; the second
  // skips the probe entirely.
  EXPECT_FALSE(fs.lookup(key, 3).has_value());
  EXPECT_EQ(fs.stats().negative_hits, 0);
  EXPECT_FALSE(fs.lookup(key, 3).has_value());
  EXPECT_FALSE(fs.lookup(key, 3).has_value());
  EXPECT_EQ(fs.stats().negative_hits, 2);
  EXPECT_EQ(fs.stats().misses, 3);
  EXPECT_EQ(registry.counter("store.negative_hits").value(), 2);

  // put() invalidates the memo before writing, so the shard written right
  // after is immediately visible — with the memory tier disabled this hit
  // can only have come from the disk probe the memo would have skipped.
  fs.put(key, hops);
  store::StoreOutcome outcome{};
  ASSERT_TRUE(fs.lookup(key, 3, &outcome).has_value());
  EXPECT_EQ(outcome, store::StoreOutcome::kDiskHit);
  EXPECT_EQ(fs.stats().negative_hits, 2);  // no stale negative hit
  const std::string sig = fs.stats().counts_signature();
  EXPECT_NE(sig.find("negative_hits=2"), std::string::npos);
  EXPECT_NE(sig.find("shard_evictions=0"), std::string::npos);
}

TEST(ObsStore, NegativeCacheCapacityZeroDisablesAndFifoBounds) {
  ShardDir dir("negative_cap");
  store::StoreConfig cfg;
  cfg.directory = dir.path;
  cfg.negative_cache_capacity = 0;
  store::FeatureStore off(cfg);
  const store::FeatureKey key{1, 2};
  EXPECT_FALSE(off.lookup(key, 3).has_value());
  EXPECT_FALSE(off.lookup(key, 3).has_value());
  EXPECT_EQ(off.stats().negative_hits, 0);  // disabled: every miss probes

  // Capacity 1: remembering a second key evicts the first (FIFO), so the
  // first key's next lookup probes the disk again.
  store::StoreConfig cfg1;
  cfg1.directory = dir.path;
  cfg1.negative_cache_capacity = 1;
  store::FeatureStore tiny(cfg1);
  const store::FeatureKey k1{10, 2}, k2{11, 2};
  EXPECT_FALSE(tiny.lookup(k1, 3).has_value());  // memoized
  EXPECT_FALSE(tiny.lookup(k2, 3).has_value());  // evicts k1's memo
  EXPECT_FALSE(tiny.lookup(k1, 3).has_value());  // probes again, re-memoizes
  EXPECT_EQ(tiny.stats().negative_hits, 0);
  EXPECT_FALSE(tiny.lookup(k1, 3).has_value());  // now a negative hit
  EXPECT_EQ(tiny.stats().negative_hits, 1);
}

TEST(ObsStore, MaxShardFilesEvictsOldestMtimeAndLogsThroughObs) {
  namespace stdfs = std::filesystem;
  ShardDir dir("shard_cap");
  TempFile ledger_file("shard_cap.jsonl");
  obs::MetricsRegistry registry;
  store::StoreConfig cfg;
  cfg.directory = dir.path;
  cfg.max_shard_files = 2;
  cfg.metrics = &registry;
  store::FeatureStore fs(cfg);
  const store::FeatureKey k1{1, 2}, k2{2, 2}, k3{3, 2};
  const auto hops = random_hops(6, 2, 3, 1);

  fs.put(k1, hops);
  fs.put(k2, hops);
  ASSERT_TRUE(stdfs::exists(fs.shard_path(k1)));
  ASSERT_TRUE(stdfs::exists(fs.shard_path(k2)));
  // Make k1 unambiguously the oldest shard.
  const auto now = stdfs::last_write_time(fs.shard_path(k2));
  stdfs::last_write_time(fs.shard_path(k1), now - std::chrono::hours(2));

  {
    obs::RunLedger ledger(ledger_file.path);
    obs::Observability ctx;
    ctx.ledger = &ledger;
    obs::ScopedObservability scope(ctx);
    fs.put(k3, hops);  // third shard: the cap deletes the oldest
  }

  EXPECT_FALSE(stdfs::exists(fs.shard_path(k1)));
  EXPECT_TRUE(stdfs::exists(fs.shard_path(k2)));
  EXPECT_TRUE(stdfs::exists(fs.shard_path(k3)));
  EXPECT_EQ(fs.stats().shard_evictions, 1);
  EXPECT_EQ(fs.stats().shard_writes, 3);
  EXPECT_EQ(registry.counter("store.shard_evictions").value(), 1);

  const auto led = obs::RunLedger::read(ledger_file.path);
  ASSERT_EQ(led.events.size(), 1u);
  EXPECT_EQ(led.events[0].type, "store.shard_eviction");
  EXPECT_EQ(led.events[0].string_field("shard"), k1.shard_name());

  // The just-written shard is never the victim, even when it would sort
  // oldest: k4 written with the cap at 2 must survive its own put.
  const store::FeatureKey k4{4, 2};
  fs.put(k4, hops);
  EXPECT_TRUE(stdfs::exists(fs.shard_path(k4)));
  EXPECT_EQ(fs.stats().shard_evictions, 2);
}

}  // namespace
}  // namespace hoga
