// Blocked-kernel tests (DESIGN.md §11): bit-exact parity between the
// blocked and reference implementations across shapes and transpose modes
// (the fp-order contract makes == the right comparison, not a tolerance),
// the zero-skip gradient regression, gradchecks for the fused autograd ops,
// arena reuse (no allocation growth across steps), kernel stats/obs
// mirrors, and the transpose cache's exactly-once build guarantee.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "graph/csr.hpp"
#include "graph/transpose_cache.hpp"
#include "obs/obs.hpp"
#include "tensor/arena.hpp"
#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hoga {
namespace {

namespace to = tensor_ops;

bool bit_exact(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

std::vector<float> random_floats(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

// -- GEMM parity -------------------------------------------------------------

struct GemmShape {
  std::int64_t m, n, k;
};

// Covers: empty accumulation (k=0), single-row (m=1), single-col, tiny,
// exact multiples of the register tile, ragged edges of every blocking
// level, and above/below the blocked-dispatch threshold.
const GemmShape kGemmShapes[] = {
    {1, 1, 1},   {1, 17, 5},  {3, 3, 0},    {7, 1, 9},    {4, 16, 8},
    {5, 19, 3},  {8, 32, 16}, {33, 47, 29}, {64, 64, 64}, {65, 129, 70},
    {128, 48, 257},
};

TEST(Kernels, GemmBlockedMatchesReferenceBitForBitAllTransposeModes) {
  for (const auto& s : kGemmShapes) {
    for (const bool ta : {false, true}) {
      for (const bool tb : {false, true}) {
        // Operands stored in their op() layout: a is [m,k] or [k,m], b is
        // [k,n] or [n,k]; leading dimension = stored row width.
        const std::int64_t lda = ta ? s.m : s.k;
        const std::int64_t ldb = tb ? s.k : s.n;
        const auto a = random_floats(s.m * s.k, 7 + s.m);
        const auto b = random_floats(s.k * s.n, 11 + s.n);
        std::vector<float> ref(static_cast<std::size_t>(s.m * s.n), -1.f);
        std::vector<float> blk(static_cast<std::size_t>(s.m * s.n), -2.f);
        kernels::gemm_reference(a.data(), b.data(), ref.data(), s.m, s.n,
                                s.k, lda, ldb, ta, tb);
        kernels::gemm_blocked(a.data(), b.data(), blk.data(), s.m, s.n, s.k,
                              lda, ldb, ta, tb);
        for (std::size_t i = 0; i < ref.size(); ++i) {
          ASSERT_EQ(ref[i], blk[i])
              << "m=" << s.m << " n=" << s.n << " k=" << s.k << " ta=" << ta
              << " tb=" << tb << " at " << i;
        }
      }
    }
  }
}

TEST(Kernels, GemmBatchedMatchesPerCallGemm) {
  const std::int64_t B = 3, m = 9, n = 21, k = 13;
  const auto a = random_floats(B * m * k, 31);
  const auto b = random_floats(B * k * n, 37);
  std::vector<float> per(static_cast<std::size_t>(B * m * n));
  std::vector<float> bat(static_cast<std::size_t>(B * m * n));
  for (std::int64_t i = 0; i < B; ++i) {
    kernels::gemm(a.data() + i * m * k, b.data() + i * k * n,
                  per.data() + i * m * n, m, n, k, k, n, false, false);
  }
  kernels::gemm_batched(a.data(), b.data(), bat.data(), B, m, n, k, k, n,
                        m * k, k * n, m * n, false, false);
  EXPECT_EQ(per, bat);
}

TEST(Kernels, MatmulDispatchesIdenticallyUnderReferenceMode) {
  // End-to-end through tensor_ops: the dispatching entry point and the
  // forced-reference path must agree bit-for-bit (the fp-order contract).
  Rng rng(5);
  const Tensor a = Tensor::randn({70, 90}, rng);
  const Tensor b = Tensor::randn({90, 40}, rng);
  const Tensor fast = to::matmul(a, b);
  kernels::ScopedReferenceMode ref(true);
  EXPECT_TRUE(bit_exact(fast, to::matmul(a, b)));
}

// -- SpMM parity -------------------------------------------------------------

graph::Csr random_graph(int n, int extra_edges, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<graph::Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  for (int e = 0; e < extra_edges; ++e) {
    const auto u = static_cast<int>(rng.uniform_int(n));
    const auto v = static_cast<int>(rng.uniform_int(n));
    edges.push_back({u, v});
  }
  return graph::Csr::from_edges(n, edges);
}

TEST(Kernels, SpmmBlockedMatchesReferenceBitForBit) {
  // Feature widths straddle the column tile; node counts straddle the row
  // block; isolated rows (from_edges keeps them empty) must zero their
  // output.
  for (const auto& [n, d] : std::vector<std::pair<int, std::int64_t>>{
           {1, 1}, {9, 3}, {64, 7}, {130, 385}, {200, 64}}) {
    const graph::Csr adj =
        random_graph(n, 3 * n, 97 + n).normalized_symmetric();
    const auto x = random_floats(n * d, 53 + d);
    std::vector<float> ref(static_cast<std::size_t>(n) * d, -1.f);
    std::vector<float> blk(static_cast<std::size_t>(n) * d, -2.f);
    kernels::spmm_reference(adj.row_ptr().data(), adj.col_idx().data(),
                            adj.values().data(), n, x.data(), d, ref.data());
    kernels::spmm_blocked(adj.row_ptr().data(), adj.col_idx().data(),
                          adj.values().data(), n, x.data(), d, blk.data());
    ASSERT_EQ(ref, blk) << "n=" << n << " d=" << d;
  }
}

// -- Fused row kernels -------------------------------------------------------

TEST(Kernels, SoftmaxRowsMatchesReferenceAndWorksInPlace) {
  const std::int64_t rows = 17, d = 33;
  auto x = random_floats(rows * d, 71);
  std::vector<float> ref(x.size()), out(x.size());
  kernels::softmax_rows_reference(x.data(), ref.data(), rows, d);
  kernels::softmax_rows(x.data(), out.data(), rows, d);
  EXPECT_EQ(ref, out);
  kernels::softmax_rows(x.data(), x.data(), rows, d);  // in place
  EXPECT_EQ(ref, x);
  for (std::int64_t r = 0; r < rows; ++r) {
    float sum = 0.f;
    for (std::int64_t j = 0; j < d; ++j) sum += out[r * d + j];
    EXPECT_NEAR(sum, 1.f, 1e-5f);
  }
}

TEST(Kernels, LayerNormRowsMatchesReference) {
  const std::int64_t rows = 13, d = 21;
  const auto x = random_floats(rows * d, 73);
  const auto gamma = random_floats(d, 74);
  const auto beta = random_floats(d, 75);
  std::vector<float> y1(x.size()), y2(x.size()), xh1(x.size()),
      xh2(x.size());
  std::vector<float> m1(rows), m2(rows), r1(rows), r2(rows);
  kernels::layer_norm_rows_reference(x.data(), rows, d, 1e-5f, gamma.data(),
                                     beta.data(), y1.data(), m1.data(),
                                     r1.data(), xh1.data());
  kernels::layer_norm_rows(x.data(), rows, d, 1e-5f, gamma.data(),
                           beta.data(), y2.data(), m2.data(), r2.data(),
                           xh2.data());
  EXPECT_EQ(y1, y2);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(xh1, xh2);
}

// -- Zero-skip regression ----------------------------------------------------

TEST(Kernels, GradientsThroughExactZeroActivationsMatchReferenceBitForBit) {
  // The seed matmul skipped zero operands (`if (av == 0.f) continue;`),
  // which made accumulation order — and hence fp results — depend on the
  // data (e.g. a skipped +0.0 add leaves a -0.0 accumulator negative). The
  // kernels must treat exact zeros like any other value: a ReLU-sparsified
  // forward/backward pass agrees bit-for-bit with the reference kernels.
  auto run = [](bool reference) {
    kernels::ScopedReferenceMode mode(reference);
    Rng rng(29);
    ag::Variable x(Tensor::randn({12, 8}, rng), true);
    ag::Variable w(Tensor::randn({8, 6}, rng), true);
    // relu(x) produces exact 0.0f in roughly half the entries.
    ag::Variable h = ag::matmul(ag::relu(x), w);
    ag::Variable loss = ag::sum_all(ag::mul(h, h));
    loss.backward();
    return std::vector<Tensor>{loss.value().clone(), x.grad().clone(),
                               w.grad().clone()};
  };
  const auto fast = run(false);
  const auto ref = run(true);
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_TRUE(bit_exact(fast[i], ref[i])) << "output " << i;
  }
}

// -- Fused-op gradchecks -----------------------------------------------------

TEST(Kernels, LayerNormAffineGradCheck) {
  Rng rng(41);
  std::vector<ag::Variable> inputs = {
      ag::Variable(Tensor::randn({5, 7}, rng), true),
      ag::Variable(Tensor::randn({7}, rng), true),
      ag::Variable(Tensor::randn({7}, rng), true)};
  const auto res = ag::grad_check(
      [](const std::vector<ag::Variable>& v) {
        return ag::layer_norm_affine(v[0], v[1], v[2]);
      },
      inputs);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(Kernels, AttentionScoresGradCheck) {
  Rng rng(43);
  std::vector<ag::Variable> inputs = {
      ag::Variable(Tensor::randn({2, 4, 3}, rng), true),
      ag::Variable(Tensor::randn({2, 4, 3}, rng), true)};
  const auto res = ag::grad_check(
      [](const std::vector<ag::Variable>& v) {
        return ag::attention_scores(v[0], v[1]);
      },
      inputs);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(Kernels, AttentionScoresMatchesUnfusedComposition) {
  Rng rng(47);
  const ag::Variable q(Tensor::randn({3, 6, 5}, rng), false);
  const ag::Variable k(Tensor::randn({3, 6, 5}, rng), false);
  const Tensor fused = ag::attention_scores(q, k).value();
  const Tensor composed =
      ag::softmax_lastdim(ag::bmm(q, k, false, true)).value();
  EXPECT_TRUE(bit_exact(fused, composed));
}

// -- Arena reuse -------------------------------------------------------------

TEST(Kernels, ArenaStopsGrowingAfterTheFirstStep) {
  Rng rng(59);
  const Tensor a = Tensor::randn({64, 64}, rng);
  const Tensor b = Tensor::randn({64, 64}, rng);
  std::size_t blocks = 0, reserved = 0;
  for (int step = 0; step < 100; ++step) {
    with_arena([&] {
      // Big enough for the blocked path, so GEMM pack panels come from the
      // arena.
      (void)to::matmul(a, b);
      (void)to::matmul(a, b, true, false);
      Arena* arena = Arena::current();
      EXPECT_NE(arena, nullptr);
      EXPECT_GT(arena->high_water_bytes(), 0u);
      if (step == 0) {
        blocks = arena->block_count();
        reserved = arena->reserved_bytes();
        EXPECT_GT(blocks, 0u);
      } else {
        // The allocation-free property: steps 2..N reuse step 1's blocks.
        EXPECT_EQ(arena->block_count(), blocks) << "step " << step;
        EXPECT_EQ(arena->reserved_bytes(), reserved) << "step " << step;
      }
      return 0;
    });
  }
}

TEST(Kernels, ScratchFallsBackToHeapOutsideArenaScope) {
  ASSERT_EQ(Arena::current(), nullptr);
  Scratch s(1024);
  ASSERT_NE(s.data(), nullptr);
  s.data()[0] = 1.f;
  s.data()[1023] = 2.f;
  EXPECT_EQ(s.data()[0], 1.f);
}

// -- Stats and obs mirrors ---------------------------------------------------

TEST(Kernels, StatsCountFlopsAndObsMirrorsThem) {
  obs::MetricsRegistry reg;
  obs::ScopedObservability scoped({.metrics = &reg});
  kernels::reset_stats();
  Rng rng(61);
  const Tensor a = Tensor::randn({40, 50}, rng);
  const Tensor b = Tensor::randn({50, 30}, rng);
  (void)to::matmul(a, b);
  EXPECT_EQ(kernels::stats().gemm_calls.load(), 1);
  EXPECT_EQ(kernels::stats().gemm_flops.load(), 2LL * 40 * 50 * 30);
  EXPECT_GT(kernels::stats().pack_bytes.load(), 0);
  EXPECT_EQ(reg.counter("kernel.gemm_flops").value(), 2LL * 40 * 50 * 30);
  EXPECT_GT(reg.counter("kernel.pack_bytes").value(), 0);

  // Arena high-water is published when the outermost scope exits.
  with_arena([&] { return to::matmul(a, b); });
  EXPECT_GT(reg.counter("arena.high_water").value(), 0);
}

// -- Transpose cache ---------------------------------------------------------

TEST(Kernels, TransposeCacheBuildsEachGraphExactlyOnce) {
  auto& cache = graph::TransposeCache::global();
  cache.clear();
  const auto a = std::make_shared<const graph::Csr>(
      random_graph(30, 60, 67).normalized_row());
  // Same content through a *different* Csr object must still hit.
  const auto a_copy = std::make_shared<const graph::Csr>(*a);

  const auto t1 = cache.get(a);
  const auto t2 = cache.get(a);
  const auto t3 = cache.get(a_copy);
  EXPECT_EQ(t1.get(), t2.get());
  EXPECT_EQ(t1.get(), t3.get());
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 2);
  EXPECT_EQ(cache.entries(), 1u);

  // The cached transpose is the actual transpose.
  const graph::Csr direct = a->transposed();
  EXPECT_EQ(t1->row_ptr(), direct.row_ptr());
  EXPECT_EQ(t1->col_idx(), direct.col_idx());
  EXPECT_EQ(t1->values(), direct.values());

  // A different graph is its own entry (second miss).
  const auto b = std::make_shared<const graph::Csr>(
      random_graph(31, 60, 68).normalized_row());
  (void)cache.get(b);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.entries(), 2u);
  cache.clear();
}

TEST(Kernels, TransposeCacheMirrorsObsCounters) {
  auto& cache = graph::TransposeCache::global();
  cache.clear();
  obs::MetricsRegistry reg;
  obs::ScopedObservability scoped({.metrics = &reg});
  const auto a = std::make_shared<const graph::Csr>(
      random_graph(12, 20, 71).normalized_row());
  (void)cache.get(a);
  (void)cache.get(a);
  EXPECT_EQ(reg.counter("spmm.transpose_misses").value(), 1);
  EXPECT_EQ(reg.counter("spmm.transpose_hits").value(), 1);
  cache.clear();
}

TEST(Kernels, TransposeCacheEvictsLruUnderByteBudget) {
  auto& cache = graph::TransposeCache::global();
  cache.clear();
  obs::MetricsRegistry reg;
  obs::ScopedObservability scoped({.metrics = &reg});

  const auto a = std::make_shared<const graph::Csr>(
      random_graph(30, 90, 77).normalized_row());
  const auto b = std::make_shared<const graph::Csr>(
      random_graph(31, 90, 78).normalized_row());
  const auto c = std::make_shared<const graph::Csr>(
      random_graph(32, 90, 79).normalized_row());

  const auto ta1 = cache.get(a);
  const std::size_t one_entry = cache.bytes();
  ASSERT_GT(one_entry, 0u);
  (void)cache.get(b);
  // Pin the budget to the current two-entry residency (plus slack for C's
  // slightly larger row_ptr), then touch A so B becomes the LRU victim.
  cache.set_budget_bytes(cache.bytes() + 64);
  (void)cache.get(a);
  (void)cache.get(c);  // over budget: B (least recently used) is evicted
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(reg.counter("spmm.transpose_evictions").value(), 1);
  EXPECT_LE(cache.bytes(), cache.budget_bytes());

  // A stayed resident (its re-request is a hit, not a rebuild)...
  const long long misses_before = cache.stats().misses;
  const auto ta2 = cache.get(a);
  EXPECT_EQ(ta2.get(), ta1.get());
  EXPECT_EQ(cache.stats().misses, misses_before);

  // ...while B was truly dropped: re-requesting rebuilds it, and the
  // rebuild is bit-identical to a direct transpose (eviction can never
  // change numerics).
  const auto tb = cache.get(b);
  EXPECT_EQ(cache.stats().misses, misses_before + 1);
  const graph::Csr direct = b->transposed();
  EXPECT_EQ(tb->row_ptr(), direct.row_ptr());
  EXPECT_EQ(tb->col_idx(), direct.col_idx());
  EXPECT_EQ(tb->values(), direct.values());

  // A budget too small for even one graph still serves the caller: the
  // entry just inserted is never its own victim.
  cache.set_budget_bytes(1);
  const auto ta3 = cache.get(a);
  EXPECT_EQ(cache.entries(), 1u);
  const graph::Csr direct_a = a->transposed();
  EXPECT_EQ(ta3->row_ptr(), direct_a.row_ptr());
  EXPECT_EQ(ta3->col_idx(), direct_a.col_idx());
  EXPECT_EQ(ta3->values(), direct_a.values());
  // Evicted-but-still-referenced transposes stay alive for their holders.
  EXPECT_EQ(ta1->row_ptr(), direct_a.row_ptr());
  cache.clear();
  EXPECT_EQ(cache.budget_bytes(), graph::TransposeCache::kDefaultBudgetBytes);
  (void)one_entry;
}

}  // namespace
}  // namespace hoga
