// Unit tests for the util subsystem: RNG, thread pool, table formatting.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <set>
#include <thread>

#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace hoga {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    counts[static_cast<std::size_t>(rng.uniform_int(10))]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, draws / 10, draws / 10 * 0.25);
  }
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(3);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(5);
  Rng b = a.split();
  // Streams should differ from each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(13);
  auto s = rng.sample_without_replacement(100, 30);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, UniformIntRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(0), std::runtime_error);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 50; ++i) {
    futs.push_back(pool.submit([&count] { count++; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(200);
  pool.parallel_for(200, [&hits](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SubmitPropagatesTaskException) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("task boom"); });
  try {
    fut.get();
    FAIL() << "expected the task's exception from future.get()";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task boom");
  }
  // The worker that ran the throwing task must survive to run more work.
  std::atomic<int> count{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(pool.submit([&count] { count++; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, CancelQueuedTaskNeverRuns) {
  ThreadPool pool(1);
  // Block the single worker so further submissions stay queued.
  std::promise<void> started;
  std::promise<void> gate;
  auto blocker = pool.submit([&started, &gate] {
    started.set_value();
    gate.get_future().wait();
  });
  started.get_future().wait();  // worker has claimed the blocker
  std::atomic<bool> ran{false};
  TaskHandle handle = pool.submit_cancellable([&ran] { ran = true; });
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(pool.pending(), 1u);
  EXPECT_TRUE(handle.cancel());
  EXPECT_TRUE(handle.cancelled());
  gate.set_value();
  EXPECT_THROW(handle.future().get(), TaskCancelled);
  EXPECT_FALSE(ran.load());
  blocker.get();
}

TEST(ThreadPool, CancelAfterStartFails) {
  ThreadPool pool(1);
  std::promise<void> started;
  std::promise<void> release;
  TaskHandle handle = pool.submit_cancellable([&started, &release] {
    started.set_value();
    release.get_future().wait();
  });
  started.get_future().wait();
  EXPECT_FALSE(handle.cancel());
  EXPECT_FALSE(handle.cancelled());
  release.set_value();
  handle.future().get();  // completes normally, no TaskCancelled
}

TEST(ThreadPool, PendingCountsQueuedNotRunning) {
  ThreadPool pool(1);
  std::promise<void> gate;
  auto blocker = pool.submit([&gate] { gate.get_future().wait(); });
  // Give the worker a moment to pop the blocker off the queue.
  while (pool.pending() > 0) std::this_thread::yield();
  EXPECT_EQ(pool.active(), 1u);  // the blocker occupies the only worker
  auto a = pool.submit([] {});
  auto b = pool.submit([] {});
  EXPECT_EQ(pool.pending(), 2u);
  gate.set_value();
  a.get();
  b.get();
  blocker.get();
  EXPECT_EQ(pool.pending(), 0u);
  while (pool.active() > 0) std::this_thread::yield();
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count++; });
    }
    // Destructor must run every queued task before joining.
  }
  EXPECT_EQ(count.load(), 20);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("a").cell(1.5, 1);
  t.row().cell("longer").cell(22.25, 2);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| a      | 1.5   |"), std::string::npos);
  EXPECT_NE(s.find("22.25"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell(static_cast<long long>(1)).pct(12.345, 1);
  EXPECT_EQ(t.to_csv(), "a,b\n1,12.3%\n");
}

TEST(Table, RejectsTooManyCells) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), std::runtime_error);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.seconds(), 0.0);
  (void)sink;
}

TEST(FormatDuration, PicksSensibleUnits) {
  EXPECT_NE(format_duration(0.0000005).find("us"), std::string::npos);
  EXPECT_NE(format_duration(0.005).find("ms"), std::string::npos);
  EXPECT_NE(format_duration(3.5).find("s"), std::string::npos);
  EXPECT_NE(format_duration(300).find("min"), std::string::npos);
}

}  // namespace
}  // namespace hoga
