// Tests for the reasoning labeler, feature extraction, and both datasets.

#include <gtest/gtest.h>

#include <cmath>

#include "circuits/multipliers.hpp"
#include "data/qor_dataset.hpp"
#include "data/reasoning_dataset.hpp"
#include "reasoning/features.hpp"
#include "reasoning/labels.hpp"

namespace hoga {
namespace {

using reasoning::NodeClass;

TEST(Labels, PureXor3IsXorRoot) {
  aig::Aig g;
  const aig::Lit a = g.add_pi();
  const aig::Lit b = g.add_pi();
  const aig::Lit c = g.add_pi();
  const aig::Lit x = g.add_xor(g.add_xor(a, b), c);
  g.add_po(x);
  const auto labels = reasoning::functional_labels(g);
  EXPECT_TRUE(labels[aig::lit_node(x)] == NodeClass::kXor ||
              labels[aig::lit_node(x)] == NodeClass::kShared);
}

TEST(Labels, PureMaj3IsMajRoot) {
  aig::Aig g;
  const aig::Lit a = g.add_pi();
  const aig::Lit b = g.add_pi();
  const aig::Lit c = g.add_pi();
  const aig::Lit m = g.add_maj(a, b, c);
  g.add_po(m);
  const auto labels = reasoning::functional_labels(g);
  EXPECT_TRUE(labels[aig::lit_node(m)] == NodeClass::kMaj ||
              labels[aig::lit_node(m)] == NodeClass::kShared);
}

TEST(Labels, PlainAndStaysPlain) {
  aig::Aig g;
  const aig::Lit a = g.add_pi();
  const aig::Lit b = g.add_pi();
  const aig::Lit c = g.add_pi();
  const aig::Lit x = g.add_and(g.add_and(a, b), c);
  g.add_po(x);
  const auto labels = reasoning::functional_labels(g);
  EXPECT_EQ(labels[aig::lit_node(x)], NodeClass::kPlain);
  // PIs are always plain.
  EXPECT_EQ(labels[aig::lit_node(a)], NodeClass::kPlain);
}

TEST(Labels, FullAdderProducesSharedNodes) {
  // Shared-form full adder: x = a^b participates in both the sum and carry
  // cones, so the shared class must be populated.
  aig::Aig g;
  const aig::Lit a = g.add_pi();
  const aig::Lit b = g.add_pi();
  const aig::Lit c = g.add_pi();
  circuits::GenRoots roots;
  const auto fa = circuits::full_adder(g, a, b, c, &roots);
  g.add_po(fa.sum);
  g.add_po(fa.carry);
  const auto hist = reasoning::class_histogram(reasoning::functional_labels(g));
  EXPECT_GT(hist[static_cast<int>(NodeClass::kShared)], 0);
  EXPECT_GT(hist[static_cast<int>(NodeClass::kXor)], 0);
  EXPECT_GT(hist[static_cast<int>(NodeClass::kMaj)], 0);
}

TEST(Labels, InvertedInputsStillMatch) {
  aig::Aig g;
  const aig::Lit a = g.add_pi();
  const aig::Lit b = g.add_pi();
  const aig::Lit c = g.add_pi();
  const aig::Lit m = g.add_maj(aig::lit_not(a), b, aig::lit_not(c));
  g.add_po(m);
  const auto labels = reasoning::functional_labels(g);
  EXPECT_TRUE(labels[aig::lit_node(m)] == NodeClass::kMaj ||
              labels[aig::lit_node(m)] == NodeClass::kShared);
}

TEST(Labels, HistogramSumsToNodeCount) {
  const auto lc = circuits::make_csa_multiplier(6);
  const auto labels = reasoning::functional_labels(lc.aig);
  const auto hist = reasoning::class_histogram(labels);
  EXPECT_EQ(hist[0] + hist[1] + hist[2] + hist[3], lc.aig.num_nodes());
}

TEST(Features, ShapeAndOneHots) {
  aig::Aig g;
  const aig::Lit a = g.add_pi();
  const aig::Lit b = g.add_pi();
  const aig::Lit x = g.add_and(aig::lit_not(a), b);
  g.add_po(x);
  const Tensor f = reasoning::node_features(g);
  EXPECT_EQ(f.shape(),
            (Shape{g.num_nodes(), reasoning::kNodeFeatureDim}));
  const auto id = aig::lit_node(x);
  EXPECT_EQ(f.at({id, 0}), 0.f);  // not PI
  EXPECT_EQ(f.at({id, 1}), 1.f);  // AND
  EXPECT_EQ(f.at({id, 3}), 1.f);  // one complemented fanin
  EXPECT_EQ(f.at({id, 5}), 1.f);  // drives PO
  // PI row.
  const auto pid = aig::lit_node(a);
  EXPECT_EQ(f.at({pid, 0}), 1.f);
  EXPECT_EQ(f.at({pid, 1}), 0.f);
  // const-0 row.
  EXPECT_EQ(f.at({0, 6}), 1.f);
}

TEST(Features, GraphExportsMatchAig) {
  const auto lc = circuits::make_csa_multiplier(4);
  const graph::Csr adj = reasoning::to_graph(lc.aig);
  EXPECT_EQ(adj.num_nodes(), lc.aig.num_nodes());
  EXPECT_TRUE(adj.is_symmetric());
  // Directed fanin graph: rows are AND nodes with out-degree <= 2 and rows
  // sum to 1 (mean normalization).
  const graph::Csr fanin = reasoning::to_fanin_graph(lc.aig);
  Tensor ones = Tensor::ones({fanin.num_nodes(), 1});
  Tensor sums = fanin.spmm(ones);
  for (aig::NodeId id = 0;
       id < static_cast<aig::NodeId>(lc.aig.num_nodes()); ++id) {
    if (lc.aig.is_and(id)) {
      EXPECT_NEAR(sums[id], 1.f, 1e-5f);
    } else {
      EXPECT_EQ(sums[id], 0.f);
    }
  }
}

TEST(ReasoningDataset, BuildsMappedGraphWithAllPieces) {
  const auto g = data::make_reasoning_graph("csa", 6, true);
  EXPECT_EQ(g.family, "csa");
  EXPECT_TRUE(g.mapped);
  EXPECT_EQ(static_cast<std::int64_t>(g.labels.size()), g.num_nodes);
  EXPECT_EQ(g.features.size(0), g.num_nodes);
  EXPECT_NE(g.adj_norm, nullptr);
  EXPECT_NE(g.adj_hop, nullptr);
  EXPECT_NE(g.adj_fanin, nullptr);
  EXPECT_NE(g.adj_row, nullptr);
  EXPECT_NE(g.adj_raw, nullptr);
  const auto counts = g.class_counts();
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], g.num_nodes);
  EXPECT_GT(counts[1], 0);  // XOR class present after mapping
  EXPECT_THROW(data::make_reasoning_graph("wallace", 4), std::runtime_error);
}

TEST(ReasoningDataset, UnmappedEasierThanMapped) {
  const auto plain = data::make_reasoning_graph("csa", 6, false);
  const auto mapped = data::make_reasoning_graph("csa", 6, true);
  // Mapping restructures: different node count, fewer detected roots.
  EXPECT_NE(plain.num_nodes, mapped.num_nodes);
  const auto pc = plain.class_counts();
  const auto mc = mapped.class_counts();
  const double plain_root_frac =
      static_cast<double>(pc[0] + pc[1] + pc[2]) / plain.num_nodes;
  const double mapped_root_frac =
      static_cast<double>(mc[0] + mc[1] + mc[2]) / mapped.num_nodes;
  EXPECT_GT(plain_root_frac, mapped_root_frac);
}

TEST(QorDataset, GeneratesSplitsAndTargets) {
  data::QorDatasetParams params;
  params.recipes_per_design = 2;
  params.size_scale = 300.0;  // tiny, fast
  params.min_recipe_len = 2;
  params.max_recipe_len = 4;
  const auto ds = data::QorDataset::generate(params);
  EXPECT_EQ(ds.designs.size(), 29u);
  EXPECT_EQ(ds.train.size(), 40u);  // 20 designs x 2 recipes
  EXPECT_EQ(ds.test.size(), 18u);   // 9 designs x 2 recipes
  for (const auto& s : ds.train) {
    EXPECT_TRUE(ds.designs[s.design_index].train_split);
    EXPECT_GT(s.target_ratio, 0.f);
    EXPECT_LE(s.target_ratio, 1.5f);
    EXPECT_EQ(s.final_ands,
              static_cast<std::int64_t>(std::llround(
                  s.target_ratio * ds.designs[s.design_index].initial_ands)));
  }
  for (const auto& s : ds.test) {
    EXPECT_FALSE(ds.designs[s.design_index].train_split);
  }
  // Designs expose both normalizations and features.
  for (const auto& d : ds.designs) {
    EXPECT_NE(d.adj_norm, nullptr);
    EXPECT_NE(d.adj_hop, nullptr);
    EXPECT_EQ(d.features.size(0), d.num_nodes);
    EXPECT_GT(d.initial_ands, 0);
  }
}

TEST(QorDataset, DeterministicForSeed) {
  data::QorDatasetParams params;
  params.recipes_per_design = 1;
  params.size_scale = 300.0;
  const auto a = data::QorDataset::generate(params);
  const auto b = data::QorDataset::generate(params);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].final_ands, b.train[i].final_ands);
    EXPECT_EQ(a.train[i].recipe.token_ids(), b.train[i].recipe.token_ids());
  }
}

}  // namespace
}  // namespace hoga
