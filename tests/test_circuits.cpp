// Circuit generator tests: arithmetic correctness (exhaustive at small
// widths, random at larger), generator-recorded roots, IP design properties.

#include <gtest/gtest.h>

#include "aig/simulate.hpp"
#include "circuits/arith.hpp"
#include "circuits/ip_designs.hpp"
#include "circuits/multipliers.hpp"
#include "reasoning/labels.hpp"

namespace hoga::circuits {
namespace {

TEST(Arith, HalfAdderFunction) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  GenRoots roots;
  const AdderBits ha = half_adder(g, a, b, &roots);
  g.add_po(ha.sum);
  g.add_po(ha.carry);
  for (std::uint64_t in = 0; in < 4; ++in) {
    const std::uint64_t out = aig::evaluate(g, in);
    const int x = in & 1, y = (in >> 1) & 1;
    EXPECT_EQ(out & 1, static_cast<std::uint64_t>(x ^ y));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(x & y));
  }
  EXPECT_EQ(roots.xor_roots.size(), 1u);
}

TEST(Arith, FullAdderFunctionAndRoots) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  GenRoots roots;
  const AdderBits fa = full_adder(g, a, b, c, &roots);
  g.add_po(fa.sum);
  g.add_po(fa.carry);
  for (std::uint64_t in = 0; in < 8; ++in) {
    const std::uint64_t out = aig::evaluate(g, in);
    const int total = (in & 1) + ((in >> 1) & 1) + ((in >> 2) & 1);
    EXPECT_EQ(out & 1, static_cast<std::uint64_t>(total & 1));
    EXPECT_EQ((out >> 1) & 1, static_cast<std::uint64_t>(total >> 1));
  }
  EXPECT_EQ(roots.xor_roots.size(), 1u);
  EXPECT_EQ(roots.maj_roots.size(), 1u);
}

TEST(Arith, DegenerateFullAdderRecordsNoRoots) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  GenRoots roots;
  full_adder(g, a, b, aig::kLitFalse, &roots);  // cin = 0 -> half adder
  EXPECT_TRUE(roots.maj_roots.empty());
}

class RippleAdderWidths : public ::testing::TestWithParam<int> {};

TEST_P(RippleAdderWidths, MatchesIntegerAddition) {
  const int bits = GetParam();
  Aig g = make_ripple_adder(bits);
  const std::uint64_t mask = (1ull << bits) - 1;
  if (bits <= 4) {
    for (std::uint64_t a = 0; a <= mask; ++a) {
      for (std::uint64_t b = 0; b <= mask; ++b) {
        EXPECT_EQ(aig::evaluate(g, a | (b << bits)), a + b);
      }
    }
  } else {
    Rng rng(bits);
    for (int t = 0; t < 200; ++t) {
      const std::uint64_t a = rng.next_u64() & mask;
      const std::uint64_t b = rng.next_u64() & mask;
      EXPECT_EQ(aig::evaluate(g, a | (b << bits)), a + b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, RippleAdderWidths,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 24));

TEST(Arith, CarryLookaheadEquivalentToRipple) {
  for (int bits : {2, 4, 6}) {
    Aig ripple = make_ripple_adder(bits);
    Aig cla = make_carry_lookahead_adder(bits);
    EXPECT_TRUE(aig::exhaustive_equivalent(ripple, cla)) << bits;
  }
}

struct MultCase {
  const char* family;
  int bits;
};

class MultiplierCorrectness : public ::testing::TestWithParam<MultCase> {};

TEST_P(MultiplierCorrectness, MatchesIntegerMultiplication) {
  const auto& param = GetParam();
  LabeledCircuit lc = std::string(param.family) == "csa"
                          ? make_csa_multiplier(param.bits)
                          : make_booth_multiplier(param.bits);
  const int bits = param.bits;
  EXPECT_EQ(lc.aig.num_pis(), 2 * bits);
  EXPECT_EQ(lc.aig.num_pos(), 2 * bits);
  const std::uint64_t mask = (1ull << bits) - 1;
  const std::uint64_t pmask =
      2 * bits >= 64 ? ~0ull : (1ull << (2 * bits)) - 1;
  if (bits <= 5) {
    for (std::uint64_t a = 0; a <= mask; ++a) {
      for (std::uint64_t b = 0; b <= mask; ++b) {
        EXPECT_EQ(aig::evaluate(lc.aig, a | (b << bits)), (a * b) & pmask)
            << param.family << " " << a << "*" << b;
      }
    }
  } else {
    Rng rng(static_cast<std::uint64_t>(bits));
    for (int t = 0; t < 100; ++t) {
      const std::uint64_t a = rng.next_u64() & mask;
      const std::uint64_t b = rng.next_u64() & mask;
      EXPECT_EQ(aig::evaluate(lc.aig, a | (b << bits)), (a * b) & pmask);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, MultiplierCorrectness,
    ::testing::Values(MultCase{"csa", 1}, MultCase{"csa", 2},
                      MultCase{"csa", 3}, MultCase{"csa", 4},
                      MultCase{"csa", 5}, MultCase{"csa", 8},
                      MultCase{"csa", 16}, MultCase{"booth", 1},
                      MultCase{"booth", 2}, MultCase{"booth", 3},
                      MultCase{"booth", 4}, MultCase{"booth", 5},
                      MultCase{"booth", 8}, MultCase{"booth", 16}),
    [](const auto& info) {
      return std::string(info.param.family) + "_" +
             std::to_string(info.param.bits);
    });

TEST(Multipliers, GeneratorRootsAreFunctionalRoots) {
  // Every generator-recorded XOR/MAJ root must be confirmed by the
  // cut-matching labeler (the labeler may find more; never fewer).
  for (const char* family : {"csa", "booth"}) {
    LabeledCircuit lc = std::string(family) == "csa"
                            ? make_csa_multiplier(8)
                            : make_booth_multiplier(8);
    const auto labels = reasoning::functional_labels(lc.aig);
    for (aig::NodeId id : lc.roots.xor_roots) {
      EXPECT_TRUE(labels[id] == reasoning::NodeClass::kXor ||
                  labels[id] == reasoning::NodeClass::kShared)
          << family << " xor root " << id;
    }
    for (aig::NodeId id : lc.roots.maj_roots) {
      EXPECT_TRUE(labels[id] == reasoning::NodeClass::kMaj ||
                  labels[id] == reasoning::NodeClass::kShared)
          << family << " maj root " << id;
    }
  }
}

TEST(Multipliers, FamiliesAreStructurallyDifferent) {
  const auto csa = make_csa_multiplier(8);
  const auto booth = make_booth_multiplier(8);
  EXPECT_NE(csa.aig.num_ands(), booth.aig.num_ands());
}

TEST(IpDesigns, TwentyNineSpecsWithPaperSplit) {
  const auto& specs = openabcd_specs();
  ASSERT_EQ(specs.size(), 29u);
  int train = 0;
  for (const auto& s : specs) train += s.train_split ? 1 : 0;
  EXPECT_EQ(train, 20);
  EXPECT_EQ(specs[0].name, "spi");
  EXPECT_EQ(specs[23].name, "vga_lcd");
  EXPECT_FALSE(specs[23].train_split);
}

TEST(IpDesigns, DeterministicGeneration) {
  const auto& spec = openabcd_specs()[0];
  Aig a = build_ip_design(spec);
  Aig b = build_ip_design(spec);
  EXPECT_EQ(a.num_ands(), b.num_ands());
  EXPECT_EQ(a.num_pis(), b.num_pis());
  Rng rng(1);
  EXPECT_TRUE(aig::random_equivalent(a, b, rng, 4));
}

TEST(IpDesigns, SizesTrackPaperOrdering) {
  // Larger paper designs produce larger scaled designs (up to the clamp).
  const auto& specs = openabcd_specs();
  const Aig small = build_ip_design(specs[2]);   // ss_pcm, 462 nodes
  const Aig large = build_ip_design(specs[23]);  // vga_lcd, 105334 nodes
  EXPECT_LT(small.num_ands(), large.num_ands());
  EXPECT_GE(small.num_ands(), 50);
}

TEST(IpDesigns, EveryCategoryBuildsAndHasPos) {
  for (const auto& spec : openabcd_specs()) {
    Aig g = build_ip_design(spec, /*size_scale=*/200.0);  // small & fast
    EXPECT_GT(g.num_ands(), 0) << spec.name;
    EXPECT_GT(g.num_pos(), 0) << spec.name;
    EXPECT_GT(g.num_pis(), 0) << spec.name;
  }
}

}  // namespace
}  // namespace hoga::circuits
