// Tests for nn layers (shape/registration/gradients) and optimizers
// (convergence on analytic problems).

#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "nn/init.hpp"
#include "nn/layers.hpp"
#include "optim/optim.hpp"
#include "tensor/ops.hpp"

namespace hoga {
namespace {

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  nn::Linear lin(3, 5, rng);
  ag::Variable x = ag::constant(Tensor::ones({4, 3}));
  ag::Variable y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{4, 5}));
  EXPECT_EQ(lin.parameters().size(), 2u);  // weight + bias
  nn::Linear nobias(3, 5, rng, false);
  EXPECT_EQ(nobias.parameters().size(), 1u);
}

TEST(Linear, ThreeDInputAppliesToTrailingAxis) {
  Rng rng(2);
  nn::Linear lin(4, 2, rng);
  ag::Variable x = ag::constant(Tensor::ones({3, 5, 4}));
  ag::Variable y = lin.forward(x);
  EXPECT_EQ(y.shape(), (Shape{3, 5, 2}));
  // Same values in every row since the input rows are identical.
  EXPECT_NEAR(y.value().at({0, 0, 0}), y.value().at({2, 4, 0}), 1e-6f);
}

TEST(Linear, GradCheckThroughLayer) {
  Rng rng(3);
  auto lin = std::make_shared<nn::Linear>(3, 2, rng);
  ag::Variable x(Tensor::randn({4, 3}, rng), true);
  auto fn = [&lin](const std::vector<ag::Variable>& v) {
    return lin->forward(v[0]);
  };
  // Check input gradient and parameter gradients.
  std::vector<ag::Variable> inputs{x};
  auto result = ag::grad_check(fn, inputs);
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(LayerNorm, NormalizesAndLearnsAffine) {
  Rng rng(4);
  nn::LayerNorm ln(8);
  ag::Variable x = ag::constant(Tensor::randn({3, 8}, rng));
  ag::Variable y = ln.forward(x);
  // With default gamma=1, beta=0 rows are standardized.
  for (std::int64_t i = 0; i < 3; ++i) {
    double mean = 0;
    for (std::int64_t j = 0; j < 8; ++j) mean += y.value().at({i, j});
    EXPECT_NEAR(mean / 8, 0.0, 1e-4);
  }
  EXPECT_EQ(ln.parameters().size(), 2u);
  EXPECT_THROW(ln.forward(ag::constant(Tensor::ones({3, 4}))),
               std::runtime_error);
}

TEST(Embedding, GatherAndGradientFlow) {
  Rng rng(5);
  nn::Embedding emb(10, 4, rng);
  ag::Variable rows = emb.forward({1, 1, 7});
  EXPECT_EQ(rows.shape(), (Shape{3, 4}));
  EXPECT_TRUE(Tensor::allclose(
      tensor_ops::slice_rows(rows.value(), 0, 1),
      tensor_ops::slice_rows(rows.value(), 1, 2)));
  ag::Variable loss = ag::sum_all(rows);
  loss.backward();
  // Row 1 used twice -> grad 2, row 7 once -> 1, row 0 unused -> 0.
  const Tensor& g = emb.parameters()[0].grad();
  EXPECT_FLOAT_EQ(g.at({1, 0}), 2.f);
  EXPECT_FLOAT_EQ(g.at({7, 0}), 1.f);
  EXPECT_FLOAT_EQ(g.at({0, 0}), 0.f);
}

TEST(Mlp, ShapesAndParameterCount) {
  Rng rng(6);
  nn::Mlp mlp({5, 8, 3}, rng);
  ag::Variable y = mlp.forward(ag::constant(Tensor::ones({2, 5})));
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_EQ(mlp.parameter_count(), 5 * 8 + 8 + 8 * 3 + 3);
}

TEST(Module, ParameterNamesAndCopy) {
  Rng rng(7);
  nn::Mlp a({2, 3, 1}, rng), b({2, 3, 1}, rng);
  auto names = a.parameter_names();
  EXPECT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "layer0.weight");
  // Different init; after copy they match.
  EXPECT_FALSE(Tensor::allclose(a.parameters()[0].value(),
                                b.parameters()[0].value()));
  b.copy_parameters_from(a);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(Tensor::allclose(a.parameters()[i].value(),
                                 b.parameters()[i].value()));
  }
}

TEST(Init, XavierBoundsAndKaimingScale) {
  Rng rng(8);
  Tensor w = nn::xavier_uniform(100, 50, rng);
  const float bound = std::sqrt(6.f / 150.f);
  for (std::int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), bound + 1e-6f);
  }
  Tensor k = nn::kaiming_normal(200, 50, rng);
  double var = 0;
  for (std::int64_t i = 0; i < k.numel(); ++i) {
    var += static_cast<double>(k.data()[i]) * k.data()[i];
  }
  var /= k.numel();
  EXPECT_NEAR(var, 2.0 / 200.0, 2.0 / 200.0 * 0.3);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // minimize (x - 3)^2
  ag::Variable x(Tensor::zeros({1}), true);
  optim::Sgd opt({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    ag::Variable diff = ag::add_scalar(x, -3.f);
    ag::Variable loss = ag::sum_all(ag::mul(diff, diff));
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(x.value()[0], 3.f, 1e-3f);
}

TEST(SgdMomentum, ConvergesFasterThanPlainOnIllConditioned) {
  auto run = [](float momentum) {
    Rng rng(9);
    ag::Variable x(Tensor::from_vector({2}, {5.f, 5.f}), true);
    optim::Sgd opt({x}, 0.02f, momentum);
    Tensor scale = Tensor::from_vector({2}, {10.f, 0.5f});
    float loss_val = 0;
    for (int i = 0; i < 60; ++i) {
      opt.zero_grad();
      ag::Variable scaled = ag::mul_const(x, scale);
      ag::Variable loss = ag::sum_all(ag::mul(scaled, scaled));
      loss.backward();
      loss_val = loss.value()[0];
      opt.step();
    }
    return loss_val;
  };
  EXPECT_LT(run(0.9f), run(0.0f) + 1e-3f);
}

TEST(Adam, ConvergesOnLinearRegression) {
  Rng rng(10);
  // y = X w* + noise; recover w*.
  Tensor w_true = Tensor::from_vector({3, 1}, {1.f, -2.f, 0.5f});
  Tensor x = Tensor::randn({64, 3}, rng);
  Tensor y = tensor_ops::matmul(x, w_true);
  ag::Variable w(Tensor::zeros({3, 1}), true);
  optim::Adam opt({w}, 0.05f);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    ag::Variable pred = ag::matmul(ag::constant(x), w);
    ag::Variable loss = ag::mse_loss(pred, y);
    loss.backward();
    opt.step();
  }
  EXPECT_TRUE(Tensor::allclose(w.value(), w_true, 0.05f));
}

TEST(Adam, WeightDecayShrinksParameters) {
  ag::Variable w(Tensor::full({4}, 10.f), true);
  optim::Adam opt({w}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/1.f);
  for (int i = 0; i < 50; ++i) {
    opt.zero_grad();
    // Zero loss gradient: decay only.
    ag::Variable loss = ag::mul_scalar(ag::sum_all(w), 0.f);
    loss.backward();
    opt.step();
  }
  EXPECT_LT(std::fabs(w.value()[0]), 10.f);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  ag::Variable x(Tensor::zeros({4}), true);
  x.mutable_grad().fill(10.f);  // norm = 20
  const float before = optim::clip_grad_norm({x}, 1.f);
  EXPECT_NEAR(before, 20.f, 1e-4f);
  double norm = 0;
  for (int i = 0; i < 4; ++i) {
    norm += static_cast<double>(x.grad()[i]) * x.grad()[i];
  }
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-4);
  // Small gradients untouched.
  x.mutable_grad().fill(0.01f);
  optim::clip_grad_norm({x}, 1.f);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.01f);
}

TEST(Dropout, ModuleTrainingFlagPropagates) {
  Rng rng(11);
  nn::Mlp mlp({4, 4, 2}, rng, /*dropout=*/0.5f);
  mlp.set_training(false);
  ag::Variable x = ag::constant(Tensor::ones({8, 4}));
  // Two eval forwards are identical (no dropout noise).
  Rng r1(1), r2(2);
  Tensor y1 = mlp.forward(x, r1).value();
  Tensor y2 = mlp.forward(x, r2).value();
  EXPECT_TRUE(Tensor::allclose(y1, y2));
}

}  // namespace
}  // namespace hoga
