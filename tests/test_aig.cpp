// AIG core tests: literal encoding, simplification rules, strashing, derived
// gates (verified by simulation), topology queries.

#include <gtest/gtest.h>

#include "aig/aig.hpp"
#include "aig/simulate.hpp"

namespace hoga::aig {
namespace {

TEST(Lit, EncodingRoundTrip) {
  const Lit l = make_lit(5, true);
  EXPECT_EQ(lit_node(l), 5u);
  EXPECT_TRUE(lit_is_compl(l));
  EXPECT_EQ(lit_not(l), make_lit(5, false));
  EXPECT_EQ(lit_not_if(l, false), l);
  EXPECT_EQ(lit_regular(l), make_lit(5, false));
}

TEST(Aig, TrivialSimplificationRules) {
  Aig g;
  const Lit a = g.add_pi();
  EXPECT_EQ(g.add_and(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.add_and(kLitTrue, a), a);
  EXPECT_EQ(g.add_and(a, a), a);
  EXPECT_EQ(g.add_and(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(g.num_ands(), 0);
}

TEST(Aig, StructuralHashingDedupes) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(b, a);  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.num_ands(), 1);
  const Lit z = g.add_and(lit_not(a), b);  // different phase -> new node
  EXPECT_NE(z, x);
  EXPECT_EQ(g.num_ands(), 2);
}

TEST(Aig, FindAndMirrorsAddAnd) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  EXPECT_EQ(g.find_and(a, b), Aig::kNoLit);
  const Lit x = g.add_and(a, b);
  EXPECT_EQ(g.find_and(a, b), x);
  EXPECT_EQ(g.find_and(b, a), x);
  EXPECT_EQ(g.find_and(a, kLitTrue), a);
  EXPECT_EQ(g.find_and(a, lit_not(a)), kLitFalse);
}

// Derived gates verified against their truth tables on 3 PIs.
TEST(Aig, DerivedGateFunctions) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  g.add_po(g.add_or(a, b));
  g.add_po(g.add_xor(a, b));
  g.add_po(g.add_xnor(a, b));
  g.add_po(g.add_mux(a, b, c));
  g.add_po(g.add_maj(a, b, c));
  for (std::uint64_t in = 0; in < 8; ++in) {
    const bool va = in & 1, vb = in & 2, vc = in & 4;
    const std::uint64_t out = evaluate(g, in);
    EXPECT_EQ(bool(out & 1), va || vb) << in;
    EXPECT_EQ(bool(out & 2), va != vb) << in;
    EXPECT_EQ(bool(out & 4), va == vb) << in;
    EXPECT_EQ(bool(out & 8), va ? vb : vc) << in;
    EXPECT_EQ(bool(out & 16),
              (va && vb) || (va && vc) || (vb && vc))
        << in;
  }
}

TEST(Aig, MultiInputGates) {
  Aig g;
  std::vector<Lit> pis;
  for (int i = 0; i < 5; ++i) pis.push_back(g.add_pi());
  g.add_po(g.add_and_multi(pis));
  g.add_po(g.add_or_multi(pis));
  g.add_po(g.add_xor_multi(pis));
  for (std::uint64_t in = 0; in < 32; ++in) {
    const std::uint64_t out = evaluate(g, in);
    EXPECT_EQ(bool(out & 1), in == 31);
    EXPECT_EQ(bool(out & 2), in != 0);
    EXPECT_EQ(bool(out & 4), __builtin_popcountll(in) % 2 == 1);
  }
  // Empty reductions.
  Aig h;
  EXPECT_EQ(h.add_and_multi({}), kLitTrue);
  EXPECT_EQ(h.add_or_multi({}), kLitFalse);
  EXPECT_EQ(h.add_xor_multi({}), kLitFalse);
}

TEST(Aig, LevelsAndDepth) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.add_and(a, b);
  const Lit y = g.add_and(x, a);
  g.add_po(y);
  const auto lvl = g.levels();
  EXPECT_EQ(lvl[lit_node(a)], 0);
  EXPECT_EQ(lvl[lit_node(x)], 1);
  EXPECT_EQ(lvl[lit_node(y)], 2);
  EXPECT_EQ(g.depth(), 2);
}

TEST(Aig, FanoutCountsIncludePoRefs) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.add_and(a, b);
  g.add_and(x, a);
  g.add_po(x);
  const auto fo = g.fanout_counts();
  EXPECT_EQ(fo[lit_node(x)], 2);  // AND fanout + PO
  EXPECT_EQ(fo[lit_node(a)], 2);
}

TEST(Aig, ConeAndReachability) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit c = g.add_pi();
  const Lit x = g.add_and(a, b);
  const Lit dead = g.add_and(b, c);
  g.add_po(x);
  const auto cone = g.cone(lit_node(x));
  EXPECT_EQ(cone.size(), 3u);  // x, a, b
  const auto live = g.reachable_from_pos();
  EXPECT_TRUE(live[lit_node(x)]);
  EXPECT_FALSE(live[lit_node(dead)]);
  EXPECT_EQ(g.num_live_ands(), 1);
  EXPECT_EQ(g.num_ands(), 2);
}

TEST(Aig, StructuralEdgesMatchFanins) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  const Lit x = g.add_and(lit_not(a), b);
  g.add_po(x);
  const auto edges = g.structural_edges();
  ASSERT_EQ(edges.size(), 2u);
  // One edge is complemented (from a), one plain (from b).
  int compl_count = 0;
  for (const auto& e : edges) {
    EXPECT_EQ(e.dst, lit_node(x));
    if (e.complemented) ++compl_count;
  }
  EXPECT_EQ(compl_count, 1);
}

TEST(Simulate, WordLevelMatchesEvaluate) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_po(g.add_xor(a, b));
  // Word simulation with alternating patterns.
  const auto out = simulate_outputs(g, {0xAAAAAAAAAAAAAAAAULL,
                                        0xCCCCCCCCCCCCCCCCULL});
  EXPECT_EQ(out[0], 0xAAAAAAAAAAAAAAAAULL ^ 0xCCCCCCCCCCCCCCCCULL);
}

TEST(Simulate, ComplementedPoHandled) {
  Aig g;
  const Lit a = g.add_pi();
  g.add_po(lit_not(a));
  EXPECT_EQ(evaluate(g, 1), 0u);
  EXPECT_EQ(evaluate(g, 0), 1u);
}

TEST(Simulate, RandomEquivalenceDetectsDifference) {
  Rng rng(1);
  Aig g1, g2;
  {
    const Lit a = g1.add_pi();
    const Lit b = g1.add_pi();
    g1.add_po(g1.add_and(a, b));
  }
  {
    const Lit a = g2.add_pi();
    const Lit b = g2.add_pi();
    g2.add_po(g2.add_or(a, b));
  }
  EXPECT_FALSE(random_equivalent(g1, g2, rng));
  EXPECT_FALSE(exhaustive_equivalent(g1, g2));
}

TEST(Simulate, ExhaustiveEquivalenceOnDeMorgan) {
  Aig g1, g2;
  {
    const Lit a = g1.add_pi();
    const Lit b = g1.add_pi();
    g1.add_po(g1.add_or(a, b));
  }
  {
    const Lit a = g2.add_pi();
    const Lit b = g2.add_pi();
    g2.add_po(lit_not(g2.add_and(lit_not(a), lit_not(b))));
  }
  EXPECT_TRUE(exhaustive_equivalent(g1, g2));
}

TEST(Aig, StatsString) {
  Aig g;
  const Lit a = g.add_pi();
  const Lit b = g.add_pi();
  g.add_po(g.add_and(a, b));
  const std::string s = g.stats_string("test");
  EXPECT_NE(s.find("pi=2"), std::string::npos);
  EXPECT_NE(s.find("and=1"), std::string::npos);
}

}  // namespace
}  // namespace hoga::aig
