// Example: the fault-tolerant training runtime end to end.
//
// Trains HOGA on a small multiplier while a deterministic fault schedule
// injects (a) a worker failure mid-epoch into the simulated data-parallel
// cluster, (b) an I/O error into a checkpoint write, and (c) a NaN into one
// gradient step. The run survives all three: the elastic epoch re-partitions
// the dead worker's batches, the checkpoint write is retried with backoff,
// and the poisoned step is rolled back to the last good state with a
// learning-rate cut. Finally a second process resumes from the mid-run
// checkpoint and reproduces the remaining loss curve bit-exactly.

#include <cstdio>
#include <cstdlib>

#include "data/reasoning_dataset.hpp"
#include "fault/fault.hpp"
#include "reasoning/features.hpp"
#include "train/node_trainer.hpp"
#include "train/parallel.hpp"
#include "util/timer.hpp"

int main() {
  using namespace hoga;
  const int K = 3;
  const std::string ckpt = "/tmp/hoga_example_fault.ckpt";

  std::puts("-- building graph and hop features --");
  const auto g = data::make_reasoning_graph("csa", 6, false);
  const auto hops = core::HopFeatures::compute(*g.adj_hop, g.features, K);
  std::printf("graph: %lld nodes\n\n", static_cast<long long>(g.num_nodes));

  const core::HogaConfig mcfg{.in_dim = reasoning::kNodeFeatureDim,
                              .hidden = 16,
                              .num_hops = K,
                              .num_layers = 1,
                              .out_dim = reasoning::kNumClasses};
  train::NodeTrainConfig cfg;
  cfg.epochs = 20;
  cfg.batch_size = 64;
  cfg.lr = 5e-3f;
  cfg.seed = 3;

  // Deterministic fault schedule for the whole demo.
  fault::Injector inj(42);
  inj.kill_worker(/*epoch=*/0, /*worker=*/1);  // (a) cluster worker dies
  inj.fail_checkpoint_write(/*nth=*/0);        // (b) first write attempt fails
  inj.corrupt_gradient_step(/*nth=*/7);        // (c) NaN in one gradient step
  fault::ScopedInjector scope(inj);

  std::puts("-- (a) elastic data-parallel epoch with a dying worker --");
  {
    Rng rng(5);
    core::Hoga model(mcfg, rng);
    train::NodeTrainConfig tcfg = cfg;
    tcfg.batch_size = 16;
    train::ClusterConfig ccfg;
    ccfg.worker_counts = {4};
    ccfg.epochs_to_time = 1;
    const auto pts =
        train::simulate_hoga_scaling(model, hops, g.labels, tcfg, ccfg);
    std::printf("4 workers, %d failure(s): compute %.1f ms + all-reduce "
                "%.1f ms + recovery %.1f ms per epoch\n\n",
                pts[0].worker_failures, pts[0].compute_seconds * 1e3,
                pts[0].allreduce_seconds * 1e3,
                pts[0].recovery_seconds * 1e3);
  }

  std::puts("-- (b)+(c) checkpointed training through write error and NaN --");
  train::TrainLog faulted;
  {
    Rng rng(1);
    core::Hoga model(mcfg, rng);
    train::NodeTrainConfig fcfg = cfg;
    fcfg.checkpoint.path = ckpt;
    // 13 does not divide 20, so the surviving file is the mid-run epoch-13
    // state rather than a final-epoch snapshot.
    fcfg.checkpoint.every = 13;
    faulted = train::train_hoga_node(model, hops, g.labels, fcfg);
    std::printf("loss %.4f -> %.4f | checkpoint retries: %d | "
                "non-finite rollbacks: %d (LR cut after each)\n\n",
                faulted.epoch_losses.front(), faulted.epoch_losses.back(),
                faulted.fault_stats.checkpoint_retries,
                faulted.fault_stats.rollbacks);
  }

  std::puts("-- resume from the mid-run checkpoint (fresh process) --");
  {
    Rng rng(999);  // init irrelevant: everything is restored from disk
    core::Hoga model(mcfg, rng);
    train::NodeTrainConfig rcfg = cfg;
    rcfg.checkpoint.resume_from = ckpt;
    const auto resumed = train::train_hoga_node(model, hops, g.labels, rcfg);
    std::printf("resumed at epoch %d, trained to epoch %zu\n",
                resumed.fault_stats.resumed_from_epoch,
                resumed.epoch_losses.size());
    bool bit_exact = resumed.epoch_losses.size() == faulted.epoch_losses.size();
    for (std::size_t i = 0; bit_exact && i < resumed.epoch_losses.size(); ++i) {
      bit_exact = resumed.epoch_losses[i] == faulted.epoch_losses[i];
    }
    std::printf("loss curve matches the uninterrupted run bit-exactly: %s\n",
                bit_exact ? "yes" : "NO");
    if (!bit_exact) return 1;
  }

  std::printf("\ninjected faults observed: %d worker, %d write, %d gradient\n",
              inj.counts().worker_failures,
              inj.counts().checkpoint_write_errors,
              inj.counts().gradient_corruptions);
  std::remove(ckpt.c_str());
  return 0;
}
