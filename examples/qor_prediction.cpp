// Example: QoR prediction after logic synthesis (the paper's first task).
//
// Generates a small OpenABC-D-style dataset by actually running synthesis
// recipes through the engine, trains a HOGA-backed QoR model on the 20
// training designs, and predicts optimized gate counts for recipes on
// held-out designs it has never seen.

#include <cstdio>

#include "data/qor_dataset.hpp"
#include "reasoning/features.hpp"
#include "train/qor_trainer.hpp"
#include "util/timer.hpp"

int main() {
  using namespace hoga;

  std::puts("-- generating dataset (29 designs, labels from real synthesis "
            "runs) --");
  Timer gen;
  data::QorDatasetParams dparams;
  dparams.recipes_per_design = 6;
  dparams.size_scale = 80.0;  // smaller designs than the benchmark for speed
  const auto ds = data::QorDataset::generate(dparams);
  std::printf("%zu train samples, %zu test samples (%s)\n\n", ds.train.size(),
              ds.test.size(), format_duration(gen.seconds()).c_str());

  train::QorModelConfig cfg;
  cfg.backbone = train::QorBackbone::kHoga;
  cfg.in_dim = reasoning::kNodeFeatureDim;
  cfg.hidden = 24;
  cfg.num_hops = 5;  // HOGA-5, as in the paper's best configuration
  std::vector<train::QorDesignInput> inputs;
  const double precompute = train::prepare_qor_inputs(ds, cfg, &inputs);
  std::printf("hop-feature precompute: %s for all 29 designs\n",
              format_duration(precompute).c_str());

  Rng rng(7);
  train::QorModel model(cfg, rng);
  train::QorTrainConfig tcfg;
  tcfg.epochs = 15;
  std::puts("-- training HOGA-5 QoR model --");
  const auto log = train::train_qor(model, inputs, ds.train, tcfg);
  std::printf("loss %.4f -> %.4f in %s\n\n", log.epoch_losses.front(),
              log.epoch_losses.back(), format_duration(log.seconds).c_str());

  const auto eval = train::evaluate_qor(model, ds, inputs, ds.test);
  std::puts("-- MAPE on unseen designs --");
  for (std::size_t i = 0; i < eval.design_names.size(); ++i) {
    std::printf("  %-14s %6.2f%%\n", eval.design_names[i].c_str(),
                eval.design_mape[i]);
  }
  std::printf("  %-14s %6.2f%%\n", "average", eval.average_mape);

  // Show a few individual predictions.
  std::puts("\n-- sample predictions (truth vs predicted gate count) --");
  for (std::size_t i = 0; i < std::min<std::size_t>(6, eval.scatter.size());
       ++i) {
    const auto& sample = ds.test[i];
    std::printf("  %-12s recipe [%s]: true %4.0f, predicted %6.1f\n",
                ds.designs[sample.design_index].name.c_str(),
                sample.recipe.to_string().c_str(), eval.scatter[i].first,
                eval.scatter[i].second);
  }
  return 0;
}
