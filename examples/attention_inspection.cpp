// Example: inspecting HOGA's hop-wise attention (the paper's Figure 7
// analysis, as a library walkthrough).
//
// After training on a mapped Booth multiplier, we extract for individual
// nodes (a) the readout scores c_k over hops and (b) the gated
// self-attention matrix S, and show how MAJ/XOR nodes concentrate on
// even-distance hops while plain nodes stay diffuse.

#include <cstdio>

#include "data/reasoning_dataset.hpp"
#include "reasoning/features.hpp"
#include "train/metrics.hpp"
#include "train/node_trainer.hpp"

int main() {
  using namespace hoga;
  const int K = 8;
  const std::int64_t d0 = reasoning::kNodeFeatureDim;

  const auto g = data::make_reasoning_graph("booth", 8, true);
  auto hops = core::HopFeatures::compute_concat(
      {g.adj_hop.get(), g.adj_fanin.get()}, g.features, K);
  Rng rng(3);
  core::Hoga model(core::HogaConfig{.in_dim = 2 * d0,
                                    .hidden = 48,
                                    .num_hops = K,
                                    .num_layers = 1,
                                    .out_dim = reasoning::kNumClasses,
                                    .input_norm = false},
                   rng);
  train::NodeTrainConfig cfg;
  cfg.epochs = 120;
  cfg.batch_size = 512;
  cfg.class_weights =
      train::inverse_frequency_weights(g.labels, reasoning::kNumClasses);
  std::puts("training HOGA on mapped 8-bit Booth multiplier...");
  train::train_hoga_node(model, hops, g.labels, cfg);

  core::HogaAttention attention;
  const Tensor logits = model.predict(hops, 4096, &attention);
  std::printf("accuracy: %.1f%%\n\n", train::accuracy(logits, g.labels) * 100);

  // One representative node per class: readout scores + attention row.
  for (int cls = 0; cls < reasoning::kNumClasses; ++cls) {
    std::int64_t node = -1;
    for (std::size_t i = 0; i < g.labels.size(); ++i) {
      if (g.labels[i] == cls) {
        node = static_cast<std::int64_t>(i);
        break;
      }
    }
    if (node < 0) continue;
    std::printf("node %lld, class %s\n", static_cast<long long>(node),
                reasoning::node_class_name(
                    static_cast<reasoning::NodeClass>(cls)));
    std::printf("  readout scores c_k (hop 1..%d): ", K);
    double even = 0;
    for (int k = 0; k < K; ++k) {
      const float c = attention.readout_scores.at({node, k});
      std::printf("%.2f ", c);
      if ((k + 1) % 2 == 0) even += c;
    }
    std::printf(" | even-hop mass %.2f\n", even);
    std::printf("  self-attention row of hop 0 over hops 0..%d: ", K);
    for (int j = 0; j <= K; ++j) {
      std::printf("%.2f ", attention.self_attention.at({node, 0, j}));
    }
    std::puts("\n");
  }
  std::puts("expected pattern (paper Fig. 7): MAJ/XOR/shared nodes "
            "concentrate readout attention on even hops; plain nodes are "
            "diffuse.");
  return 0;
}
