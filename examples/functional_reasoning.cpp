// Example: functional reasoning on technology-mapped multipliers (the
// paper's second task, following Gamora).
//
// Trains HOGA on a mapped 8-bit CSA multiplier and identifies adder sum
// (XOR) and carry (MAJ) roots on a mapped 32-bit multiplier it has never
// seen — the generalization-across-sizes setting of Figure 6.

#include <cstdio>

#include "data/reasoning_dataset.hpp"
#include "reasoning/features.hpp"
#include "train/metrics.hpp"
#include "train/node_trainer.hpp"
#include "util/timer.hpp"

int main() {
  using namespace hoga;
  const int K = 8;
  const std::int64_t d0 = reasoning::kNodeFeatureDim;

  std::puts("-- building mapped multipliers --");
  const auto train_graph = data::make_reasoning_graph("csa", 8, true);
  const auto test_graph = data::make_reasoning_graph("csa", 32, true);
  const auto counts = train_graph.class_counts();
  std::printf("train (8-bit):  %lld nodes | MAJ %lld, XOR %lld, shared %lld, "
              "plain %lld\n",
              static_cast<long long>(train_graph.num_nodes),
              static_cast<long long>(counts[0]),
              static_cast<long long>(counts[1]),
              static_cast<long long>(counts[2]),
              static_cast<long long>(counts[3]));
  std::printf("test (32-bit): %lld nodes\n\n",
              static_cast<long long>(test_graph.num_nodes));

  // Hop features over the symmetric graph and the directed fanin cone.
  auto hops_train = core::HopFeatures::compute_concat(
      {train_graph.adj_hop.get(), train_graph.adj_fanin.get()},
      train_graph.features, K);
  auto hops_test = core::HopFeatures::compute_concat(
      {test_graph.adj_hop.get(), test_graph.adj_fanin.get()},
      test_graph.features, K);

  Rng rng(3);
  core::Hoga model(core::HogaConfig{.in_dim = 2 * d0,
                                    .hidden = 48,
                                    .num_hops = K,
                                    .num_layers = 1,
                                    .out_dim = reasoning::kNumClasses,
                                    .input_norm = false},
                   rng);
  train::NodeTrainConfig cfg;
  cfg.epochs = 120;
  cfg.batch_size = 512;
  cfg.lr = 3e-3f;
  cfg.class_weights = train::inverse_frequency_weights(
      train_graph.labels, reasoning::kNumClasses);
  std::puts("-- training HOGA (K=8) on the 8-bit multiplier --");
  const auto log =
      train::train_hoga_node(model, hops_train, train_graph.labels, cfg);
  std::printf("loss %.3f -> %.3f in %s\n\n", log.epoch_losses.front(),
              log.epoch_losses.back(), format_duration(log.seconds).c_str());

  for (const auto* name_graph_hops :
       {&hops_train, &hops_test}) {
    const bool is_train = name_graph_hops == &hops_train;
    const auto& g = is_train ? train_graph : test_graph;
    const Tensor logits = model.predict(*name_graph_hops);
    std::printf("-- %s (%d-bit) --\n", is_train ? "train" : "unseen",
                g.bitwidth);
    std::printf("overall accuracy: %.1f%%\n",
                train::accuracy(logits, g.labels) * 100);
    const auto pca = train::per_class_accuracy(logits, g.labels,
                                               reasoning::kNumClasses);
    for (int c = 0; c < reasoning::kNumClasses; ++c) {
      std::printf("  %-8s recall %.1f%%\n",
                  reasoning::node_class_name(
                      static_cast<reasoning::NodeClass>(c)),
                  pca[static_cast<std::size_t>(c)] * 100);
    }
    std::puts("");
  }
  return 0;
}
