// Quickstart: the smallest end-to-end HOGA run.
//
// 1. Build a circuit (a ripple-carry adder) as an AIG.
// 2. Export graph-learning inputs (features + normalized adjacency).
// 3. Precompute hop-wise features (HOGA phase 1 — the only step that
//    touches the graph).
// 4. Train HOGA to classify XOR/MAJ/shared/plain nodes.
// 5. Inspect predictions and per-node hop-attention scores.

#include <cstdio>

#include "circuits/arith.hpp"
#include "core/hoga_model.hpp"
#include "reasoning/features.hpp"
#include "reasoning/labels.hpp"
#include "train/metrics.hpp"
#include "train/node_trainer.hpp"

int main() {
  using namespace hoga;

  // 1. A 16-bit ripple-carry adder: full adders all the way up.
  const aig::Aig adder = circuits::make_ripple_adder(16);
  std::printf("circuit: %s\n", adder.stats_string("rca16").c_str());

  // 2. Node features, functional labels, and the Eq. 3 adjacency.
  const Tensor features = reasoning::node_features(adder);
  const auto label_classes = reasoning::functional_labels(adder);
  std::vector<int> labels;
  for (auto c : label_classes) labels.push_back(static_cast<int>(c));
  const graph::Csr adj =
      reasoning::to_graph(adder).normalized_symmetric(0.f);

  // 3. Phase 1: hop-wise features X^(k) = Â X^(k-1), k = 1..K. After this
  //    line the graph is never consulted again.
  const int K = 4;
  const auto hops = core::HopFeatures::compute(adj, features, K);
  std::printf("hop features: [%lld nodes, K+1=%d hops, %lld dims]\n",
              static_cast<long long>(hops.num_nodes()), K + 1,
              static_cast<long long>(hops.feature_dim()));

  // 4. Phase 2: train the gated self-attention model on node batches.
  Rng rng(1);
  core::Hoga model(
      core::HogaConfig{.in_dim = reasoning::kNodeFeatureDim,
                       .hidden = 32,
                       .num_hops = K,
                       .num_layers = 1,
                       .out_dim = reasoning::kNumClasses},
      rng);
  train::NodeTrainConfig cfg;
  cfg.epochs = 80;
  cfg.batch_size = 128;
  cfg.class_weights =
      train::inverse_frequency_weights(labels, reasoning::kNumClasses);
  const auto log = train::train_hoga_node(model, hops, labels, cfg);
  std::printf("training: loss %.3f -> %.3f in %.1fs\n",
              log.epoch_losses.front(), log.epoch_losses.back(), log.seconds);

  // 5. Evaluate and peek at attention for one full-adder sum node.
  core::HogaAttention attention;
  const Tensor logits = model.predict(hops, 4096, &attention);
  std::printf("node accuracy: %.1f%%\n",
              train::accuracy(logits, labels) * 100);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (label_classes[i] == reasoning::NodeClass::kXor) {
      std::printf("hop attention of an XOR (adder sum) node:");
      for (int k = 0; k < K; ++k) {
        std::printf(" c%d=%.2f", k + 1,
                    attention.readout_scores.at(
                        {static_cast<std::int64_t>(i), k}));
      }
      std::printf("\n");
      break;
    }
  }
  return 0;
}
