// Example: a complete EDA flow through the library —
//
//   generate -> export AIGER -> re-import -> synthesize (resyn2) ->
//   technology-map -> label functionally -> HOGA inference ->
//   checkpoint the model -> export an attention-colored DOT graph.
//
// This is the "downstream user" path: every artifact a real flow would
// exchange (netlists, checkpoints, visualizations) goes through a public
// API.

#include <cstdio>
#include <fstream>

#include "aig/aiger.hpp"
#include "aig/dot.hpp"
#include "aig/simulate.hpp"
#include "circuits/multipliers.hpp"
#include "data/reasoning_dataset.hpp"
#include "nn/serialize.hpp"
#include "reasoning/features.hpp"
#include "synth/recipe.hpp"
#include "synth/techmap.hpp"
#include "train/metrics.hpp"
#include "train/node_trainer.hpp"

int main() {
  using namespace hoga;

  // 1. Generate a multiplier and round-trip it through AIGER.
  const auto lc = circuits::make_csa_multiplier(8);
  aig::write_aiger_file(lc.aig, "/tmp/hoga_flow_mult8.aag");
  aig::Aig netlist = aig::read_aiger_file("/tmp/hoga_flow_mult8.aag");
  std::printf("imported: %s\n", netlist.stats_string("mult8").c_str());

  // 2. Optimize with the reference recipe, then map.
  const auto optimized = synth::run_recipe(netlist, synth::Recipe::resyn2());
  std::printf("resyn2:   %lld -> %lld ANDs\n",
              static_cast<long long>(netlist.num_live_ands()),
              static_cast<long long>(optimized.optimized.num_ands()));
  aig::Aig mapped = synth::tech_map(optimized.optimized);
  Rng eq_rng(1);
  std::printf("mapped:   %lld ANDs (function preserved: %s)\n",
              static_cast<long long>(mapped.num_ands()),
              aig::random_equivalent(netlist, mapped, eq_rng, 8) ? "yes"
                                                                 : "NO!");

  // 3. Label and learn.
  const auto labels_enum = reasoning::functional_labels(mapped);
  std::vector<int> labels;
  for (auto c : labels_enum) labels.push_back(static_cast<int>(c));
  const Tensor features = reasoning::node_features(mapped);
  const graph::Csr sym = reasoning::to_graph(mapped).normalized_symmetric(0.f);
  const graph::Csr fanin = reasoning::to_fanin_graph(mapped);
  const int K = 8;
  const auto hops =
      core::HopFeatures::compute_concat({&sym, &fanin}, features, K);

  Rng rng(3);
  core::Hoga model(
      core::HogaConfig{.in_dim = 2 * reasoning::kNodeFeatureDim,
                       .hidden = 32,
                       .num_hops = K,
                       .num_layers = 1,
                       .out_dim = reasoning::kNumClasses,
                       .input_norm = false},
      rng);
  train::NodeTrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 512;
  cfg.class_weights =
      train::inverse_frequency_weights(labels, reasoning::kNumClasses);
  train::train_hoga_node(model, hops, labels, cfg);

  core::HogaAttention attention;
  const Tensor logits = model.predict(hops, 4096, &attention);
  std::printf("reasoning accuracy on mapped netlist: %.1f%%\n",
              train::accuracy(logits, labels) * 100);

  // 4. Checkpoint the trained model.
  nn::save_checkpoint_file(model, "/tmp/hoga_flow_model.ckpt");
  core::Hoga restored(model.config(), rng);
  nn::load_checkpoint_file(restored, "/tmp/hoga_flow_model.ckpt");
  std::printf("checkpoint round-trip: predictions identical: %s\n",
              Tensor::allclose(restored.predict(hops, 4096), logits, 1e-5f)
                  ? "yes"
                  : "NO!");

  // 5. Export a DOT view colored by predicted class.
  aig::DotOptions dot;
  dot.max_nodes = 120;
  dot.node_color = [&](aig::NodeId id) -> std::string {
    const std::int64_t row = static_cast<std::int64_t>(id);
    int best = 0;
    for (int c = 1; c < reasoning::kNumClasses; ++c) {
      if (logits.at({row, c}) > logits.at({row, best})) best = c;
    }
    switch (best) {
      case 0: return "salmon";      // MAJ
      case 1: return "lightblue";   // XOR
      case 2: return "plum";        // shared
      default: return "";
    }
  };
  std::ofstream("/tmp/hoga_flow_mapped.dot") << aig::to_dot(mapped, dot);
  std::puts("wrote /tmp/hoga_flow_mapped.dot "
            "(render with: dot -Tsvg ... )");
  return 0;
}
