#!/usr/bin/env python3
"""Compare two bench JSON runs and flag regressions.

Usage: scripts/perf_diff.py BASELINE.json CURRENT.json [--threshold=0.10]

Each file is the output of a bench binary's `--out=...`: an object mapping
case names to metric objects. Three formats are understood:

  BENCH_kernels.json  {"gemm": {"gflops": ..., "best_ms": ...}, ...}
  BENCH_dist.json     {"clean_w4": {"throughput": ...}, ...}
  BENCH_serving.json  {"batch_cap_8": {"throughput": ..., "p99_ms": ...}, ...}

Every known metric present in an entry is compared: "gflops" and
"throughput" (rows or requests per second) are higher-is-better; "p99_ms"
(tail latency) is lower-is-better. Top-level metadata entries that are not
objects with any known key ("bench", "seed", ...) are skipped. A case has
regressed when any of its metrics moves more than `threshold` (default
10%) in the bad direction — so a serving change that holds throughput but
blows up tail latency still fails the gate. Cases present in only one file
are reported but are not failures (benches gain cases over time). Exits 1
if any case regressed, 0 otherwise — wire it between two bench runs to
gate a perf-sensitive change.
"""

import json
import sys

HIGHER_IS_BETTER = ("gflops", "throughput")
LOWER_IS_BETTER = ("p99_ms",)


def metrics_of(entry):
    if not isinstance(entry, dict):
        return {}
    return {key: entry[key]
            for key in HIGHER_IS_BETTER + LOWER_IS_BETTER
            if key in entry}


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object of bench results")
    return {name: m for name, entry in data.items()
            if (m := metrics_of(entry))}


def main(argv):
    threshold = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip())
        return 2

    base, cur = load(paths[0]), load(paths[1])
    regressions = []
    print(f"{'case':<32} {'base':>13} {'current':>13} {'delta':>8}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            for metric, value in cur[name].items():
                print(f"{name + '.' + metric:<32} {'-':>13} {value:>13.2f}"
                      f"   (new)")
            continue
        if name not in cur:
            for metric, value in base[name].items():
                print(f"{name + '.' + metric:<32} {value:>13.2f} {'-':>13}"
                      f"   (gone)")
            continue
        for metric in sorted(set(base[name]) & set(cur[name])):
            b, c = base[name][metric], cur[name][metric]
            delta = (c - b) / b if b > 0 else 0.0
            # Regression = the metric moved past the threshold in its bad
            # direction: down for throughput-likes, up for latency-likes.
            worse = -delta if metric in LOWER_IS_BETTER else delta
            flag = ""
            if worse < -threshold:
                regressions.append(f"{name}.{metric}")
                flag = "  REGRESSED"
            print(f"{name + '.' + metric:<32} {b:>13.2f} {c:>13.2f} "
                  f"{delta:>+7.1%}{flag}")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed more than "
              f"{threshold:.0%}: {', '.join(regressions)}")
        return 1
    print(f"\nno metric regressed more than {threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
