#!/usr/bin/env python3
"""Compare two BENCH_kernels.json runs and flag regressions.

Usage: scripts/perf_diff.py BASELINE.json CURRENT.json [--threshold=0.10]

Each file is the output of `bench_kernels --out=...`: a flat object mapping
kernel names to {"gflops", "best_ms", "p50_ms", "p95_ms"}. A kernel has
regressed when its current best-iteration GFLOP/s is more than `threshold`
(default 10%) below the baseline's. Kernels present in only one file are
reported but are not failures (benches gain cases over time). Exits 1 if
any kernel regressed, 0 otherwise — wire it between two bench runs to gate
a perf-sensitive change.
"""

import json
import sys


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object of kernel results")
    return data


def main(argv):
    threshold = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip())
        return 2

    base, cur = load(paths[0]), load(paths[1])
    regressions = []
    print(f"{'kernel':<20} {'base GFLOP/s':>13} {'cur GFLOP/s':>13} {'delta':>8}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<20} {'-':>13} {cur[name]['gflops']:>13.2f}   (new)")
            continue
        if name not in cur:
            print(f"{name:<20} {base[name]['gflops']:>13.2f} {'-':>13}   (gone)")
            continue
        b, c = base[name]["gflops"], cur[name]["gflops"]
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if delta < -threshold:
            regressions.append(name)
            flag = "  REGRESSED"
        print(f"{name:<20} {b:>13.2f} {c:>13.2f} {delta:>+7.1%}{flag}")

    if regressions:
        print(f"\n{len(regressions)} kernel(s) regressed more than "
              f"{threshold:.0%}: {', '.join(regressions)}")
        return 1
    print(f"\nno kernel regressed more than {threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
