#!/usr/bin/env python3
"""Compare two bench JSON runs and flag regressions.

Usage: scripts/perf_diff.py BASELINE.json CURRENT.json [--threshold=0.10]

Each file is the output of a bench binary's `--out=...`: an object mapping
case names to metric objects. Two formats are understood:

  BENCH_kernels.json  {"gemm": {"gflops": ..., "best_ms": ...}, ...}
  BENCH_dist.json     {"clean_w4": {"throughput": ...}, ...}

The compared metric is "gflops" when an entry has one, else "throughput"
(rows/s); both are higher-is-better. Top-level metadata entries that are
not objects with either key ("bench", "seed", ...) are skipped. A case has
regressed when its current metric is more than `threshold` (default 10%)
below the baseline's. Cases present in only one file are reported but are
not failures (benches gain cases over time). Exits 1 if any case
regressed, 0 otherwise — wire it between two bench runs to gate a
perf-sensitive change.
"""

import json
import sys

METRICS = ("gflops", "throughput")


def metric_of(entry):
    if isinstance(entry, dict):
        for key in METRICS:
            if key in entry:
                return entry[key]
    return None


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not isinstance(data, dict):
        raise SystemExit(f"{path}: expected a JSON object of bench results")
    return {name: metric_of(entry) for name, entry in data.items()
            if metric_of(entry) is not None}


def main(argv):
    threshold = 0.10
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip())
        return 2

    base, cur = load(paths[0]), load(paths[1])
    regressions = []
    print(f"{'case':<24} {'base':>13} {'current':>13} {'delta':>8}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<24} {'-':>13} {cur[name]:>13.2f}   (new)")
            continue
        if name not in cur:
            print(f"{name:<24} {base[name]:>13.2f} {'-':>13}   (gone)")
            continue
        b, c = base[name], cur[name]
        delta = (c - b) / b if b > 0 else 0.0
        flag = ""
        if delta < -threshold:
            regressions.append(name)
            flag = "  REGRESSED"
        print(f"{name:<24} {b:>13.2f} {c:>13.2f} {delta:>+7.1%}{flag}")

    if regressions:
        print(f"\n{len(regressions)} case(s) regressed more than "
              f"{threshold:.0%}: {', '.join(regressions)}")
        return 1
    print(f"\nno case regressed more than {threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
