#!/usr/bin/env bash
# Full local gate: plain build + tests, then an address/UB-sanitizer build
# + tests. Both passes run the whole ctest suite, which includes the
# feature-store tests (test_store.cpp), the storage-engine tests
# (test_storage.cpp), the distributed-runtime tests (test_dist.cpp), and
# the bench_store / bench_serving / bench_obs / bench_storage / bench_dist
# smoke acceptance runs. The serving runtime, the feature store, the
# storage engine (background scrubber thread, segmented-ledger appends
# racing read_dir recovery in the soak), and the observability layer
# (atomic metric cells, thread-local span stacks, cross-thread clock
# handoff) are heavily multi-threaded, so the sanitizer pass is not
# optional before merging changes to src/serve, src/batch (the coalescing
# scheduler's executor thread races submit/flush/shutdown against promise
# delivery and token-bucket state; test_batch.cpp plus the bench_serving
# sweep drive those paths under both builds), src/store, src/storage,
# src/obs, src/util, or src/fault — nor for src/tensor (the
# blocked kernels and the bump arena: packing index math, Scratch LIFO
# lifetimes, and uninitialized Tensor::empty storage are exactly what
# asan/ubsan exist to catch; bench_kernels_smoke re-checks kernel parity
# under both builds). src/dist is on the same must-sanitize list: the
# coordinator multiplexes live worker channels while forked children share
# the wire codec, and the kill/rejoin soak (bench_dist_smoke) exercises
# fork/SIGKILL/flock paths where asan/ubsan catch use-after-close and
# framing arithmetic bugs the happy path never hits.
#
# Usage: scripts/check.sh [--skip-sanitize]

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== plain build =="
cmake -B build -S . >/dev/null
cmake --build build -j"${JOBS}"
ctest --test-dir build -j"${JOBS}" --output-on-failure

if [[ "${1:-}" == "--skip-sanitize" ]]; then
  echo "== sanitizer pass skipped =="
  exit 0
fi

echo "== sanitizer build (address;undefined) =="
cmake -B build-asan -S . -DHOGA_SANITIZE="address;undefined" >/dev/null
cmake --build build-asan -j"${JOBS}"
ctest --test-dir build-asan -j"${JOBS}" --output-on-failure

echo "== all checks passed =="
